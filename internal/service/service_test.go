package service

import (
	"bytes"
	"context"
	"encoding/json"
	"fmt"
	"net/http"
	"net/http/httptest"
	"strings"
	"sync"
	"testing"
	"time"

	"rsgen/internal/dag"
	"rsgen/internal/heurpred"
	"rsgen/internal/knee"
	"rsgen/internal/spec"
)

// testGenerator trains one tiny model pair for the whole test binary
// (training is deterministic, so sharing it cannot couple tests).
var testGenerator = sync.OnceValues(func() (*spec.Generator, error) {
	size, err := knee.Train(knee.TrainConfig{
		Sizes:      []int{30, 80},
		CCRs:       []float64{0.1, 0.5},
		Alphas:     []float64{0.4, 0.7},
		Betas:      []float64{0.2, 0.8},
		Reps:       1,
		Density:    0.5,
		MeanCost:   40,
		Thresholds: knee.Thresholds,
		Seed:       7,
	})
	if err != nil {
		return nil, err
	}
	heur, err := heurpred.Train(heurpred.TrainConfig{
		Sizes:  []int{30, 80},
		CCRs:   []float64{0.1},
		Alphas: []float64{0.5},
		Betas:  []float64{0.5},
		Reps:   1,
		Seed:   8,
	})
	if err != nil {
		return nil, err
	}
	return &spec.Generator{Size: size, Heur: heur}, nil
})

func newTestServer(t *testing.T, mutate func(*Config)) *Server {
	t.Helper()
	gen, err := testGenerator()
	if err != nil {
		t.Fatalf("training test generator: %v", err)
	}
	cfg := Config{Generator: gen}
	if mutate != nil {
		mutate(&cfg)
	}
	s, err := New(cfg)
	if err != nil {
		t.Fatalf("New: %v", err)
	}
	return s
}

// testDAGJSON is a small valid request DAG (a diamond).
const testDAGJSON = `{"tasks":[{"id":0,"cost":10},{"id":1,"cost":12},{"id":2,"cost":8},{"id":3,"cost":9}],
"edges":[{"from":0,"to":1,"cost":2},{"from":0,"to":2,"cost":2},{"from":1,"to":3,"cost":1},{"from":2,"to":3,"cost":1}]}`

func specBody(opts string) string {
	if opts == "" {
		opts = "{}"
	}
	return fmt.Sprintf(`{"dag": %s, "options": %s}`, testDAGJSON, opts)
}

func post(s http.Handler, body string) *httptest.ResponseRecorder {
	req := httptest.NewRequest(http.MethodPost, "/v1/spec", strings.NewReader(body))
	w := httptest.NewRecorder()
	s.ServeHTTP(w, req)
	return w
}

func TestHandlerErrors(t *testing.T) {
	s := newTestServer(t, func(c *Config) { c.MaxBodyBytes = 4096 })
	cases := []struct {
		name string
		body string
		want int
	}{
		{"bad json", "{not json", http.StatusBadRequest},
		{"empty body", "", http.StatusBadRequest},
		{"no dag", `{"options": {}}`, http.StatusBadRequest},
		{"invalid dag (cycle)", `{"dag": {"tasks":[{"id":0,"cost":1},{"id":1,"cost":1}],"edges":[{"from":0,"to":1,"cost":1},{"from":1,"to":0,"cost":1}]}}`, http.StatusBadRequest},
		{"oversized body", specBody(`{"heuristic": "` + strings.Repeat("A", 5000) + `"}`), http.StatusRequestEntityTooLarge},
		{"unknown heuristic", specBody(`{"heuristic": "NOPE"}`), http.StatusBadRequest},
		{"unknown threshold", specBody(`{"threshold": 0.42}`), http.StatusBadRequest},
		{"negative clock", specBody(`{"clock_ghz": -1}`), http.StatusBadRequest},
		{"het out of range", specBody(`{"heterogeneity_tolerance": 1.5}`), http.StatusBadRequest},
		{"bad alternative clock", specBody(`{"alternative_clocks": [0]}`), http.StatusBadRequest},
		{"ok", specBody(""), http.StatusOK},
	}
	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			w := post(s, tc.body)
			if w.Code != tc.want {
				t.Fatalf("status = %d, want %d; body: %s", w.Code, tc.want, w.Body.String())
			}
			if w.Code != http.StatusOK {
				var e errorBody
				if err := json.Unmarshal(w.Body.Bytes(), &e); err != nil || e.Error == "" {
					t.Errorf("error body not {\"error\": …}: %q", w.Body.String())
				}
			}
		})
	}
}

func TestMethodNotAllowed(t *testing.T) {
	s := newTestServer(t, nil)
	req := httptest.NewRequest(http.MethodGet, "/v1/spec", nil)
	w := httptest.NewRecorder()
	s.ServeHTTP(w, req)
	if w.Code != http.StatusMethodNotAllowed {
		t.Fatalf("GET /v1/spec = %d, want 405", w.Code)
	}
}

func TestTimeout(t *testing.T) {
	s := newTestServer(t, func(c *Config) { c.Timeout = time.Millisecond })
	s.computeHook = func() { time.Sleep(50 * time.Millisecond) }
	w := post(s, specBody(""))
	if w.Code != http.StatusGatewayTimeout {
		t.Fatalf("status = %d, want 504; body: %s", w.Code, w.Body.String())
	}
}

func TestPinnedHeuristicAndOptions(t *testing.T) {
	s := newTestServer(t, nil)
	w := post(s, specBody(`{"heuristic": "FCFS", "clock_ghz": 2.5, "heterogeneity_tolerance": 0.2, "min_memory_mb": 2048}`))
	if w.Code != http.StatusOK {
		t.Fatalf("status = %d: %s", w.Code, w.Body.String())
	}
	var resp SpecResponse
	if err := json.Unmarshal(w.Body.Bytes(), &resp); err != nil {
		t.Fatal(err)
	}
	if resp.Heuristic != "FCFS" {
		t.Errorf("heuristic = %q, want pinned FCFS", resp.Heuristic)
	}
	if resp.MaxClockGHz != 2.5 || resp.MinMemoryMB != 2048 {
		t.Errorf("options not honored: %+v", resp)
	}
	if resp.RCSize < 1 || resp.VgDL == "" || resp.ClassAd == "" || resp.Sword == "" {
		t.Errorf("incomplete specification: %+v", resp)
	}
}

// TestByteIdenticalUnderConcurrency is the cache-determinism contract: 16
// parallel clients posting the same request all get byte-identical bodies,
// and a subsequent request is a visible cache hit.
func TestByteIdenticalUnderConcurrency(t *testing.T) {
	s := newTestServer(t, nil)
	const clients = 16
	bodies := make([][]byte, clients)
	var wg sync.WaitGroup
	for i := 0; i < clients; i++ {
		wg.Add(1)
		go func(i int) {
			defer wg.Done()
			w := post(s, specBody(""))
			if w.Code != http.StatusOK {
				t.Errorf("client %d: status %d: %s", i, w.Code, w.Body.String())
				return
			}
			bodies[i] = w.Body.Bytes()
		}(i)
	}
	wg.Wait()
	for i := 1; i < clients; i++ {
		if !bytes.Equal(bodies[0], bodies[i]) {
			t.Fatalf("client %d body differs:\n%s\nvs\n%s", i, bodies[0], bodies[i])
		}
	}
	// One more serial request must be a cache hit with the same bytes.
	w := post(s, specBody(""))
	if got := w.Header().Get("X-Cache"); got != "hit" {
		t.Errorf("X-Cache = %q, want hit", got)
	}
	if !bytes.Equal(bodies[0], w.Body.Bytes()) {
		t.Error("cache replay differs from computed body")
	}
	// And the hit must be visible in /metrics.
	mw := httptest.NewRecorder()
	s.ServeHTTP(mw, httptest.NewRequest(http.MethodGet, "/metrics", nil))
	if mw.Code != http.StatusOK {
		t.Fatalf("/metrics = %d", mw.Code)
	}
	metrics := mw.Body.String()
	if !strings.Contains(metrics, "rsgend_spec_cache_hits_total") {
		t.Errorf("metrics missing cache hit counter:\n%s", metrics)
	}
	if strings.Contains(metrics, "rsgend_spec_cache_hits_total 0\n") {
		t.Errorf("cache hits still zero after a replayed request:\n%s", metrics)
	}
}

func TestHealthz(t *testing.T) {
	s := newTestServer(t, nil)
	w := httptest.NewRecorder()
	s.ServeHTTP(w, httptest.NewRequest(http.MethodGet, "/healthz", nil))
	if w.Code != http.StatusOK {
		t.Fatalf("/healthz = %d", w.Code)
	}
	var h map[string]any
	if err := json.Unmarshal(w.Body.Bytes(), &h); err != nil {
		t.Fatal(err)
	}
	if h["status"] != "ok" {
		t.Errorf("status = %v", h["status"])
	}
	if n, ok := h["size_thresholds"].(float64); !ok || n < 1 {
		t.Errorf("size_thresholds = %v", h["size_thresholds"])
	}
	// The in-memory store reports no persistence and nothing recovered.
	store, ok := h["store"].(map[string]any)
	if !ok {
		t.Fatalf("store = %v, want recovery object", h["store"])
	}
	if store["durable"] != false {
		t.Errorf("store.durable = %v on the in-memory store, want false", store["durable"])
	}
}

// TestGracefulShutdownDrains starts a real http.Server, parks a request
// inside the compute path, initiates Shutdown, and asserts the shutdown
// blocks until the in-flight request completes successfully.
func TestGracefulShutdownDrains(t *testing.T) {
	s := newTestServer(t, nil)
	entered := make(chan struct{})
	release := make(chan struct{})
	var hookOnce sync.Once
	s.computeHook = func() {
		hookOnce.Do(func() {
			close(entered)
			<-release
		})
	}

	ts := httptest.NewServer(s)
	defer ts.Close()

	type result struct {
		status int
		body   []byte
		err    error
	}
	resc := make(chan result, 1)
	go func() {
		resp, err := http.Post(ts.URL+"/v1/spec", "application/json", strings.NewReader(specBody("")))
		if err != nil {
			resc <- result{err: err}
			return
		}
		defer resp.Body.Close()
		var buf bytes.Buffer
		_, _ = buf.ReadFrom(resp.Body)
		resc <- result{status: resp.StatusCode, body: buf.Bytes()}
	}()

	<-entered // request is now inside compute

	shutdownDone := make(chan error, 1)
	go func() {
		ctx, cancel := context.WithTimeout(context.Background(), 10*time.Second)
		defer cancel()
		shutdownDone <- ts.Config.Shutdown(ctx)
	}()

	select {
	case err := <-shutdownDone:
		t.Fatalf("Shutdown returned (%v) while a request was still in flight", err)
	case <-time.After(100 * time.Millisecond):
		// Still draining, as it should be.
	}

	close(release)
	res := <-resc
	if res.err != nil {
		t.Fatalf("in-flight request failed during drain: %v", res.err)
	}
	if res.status != http.StatusOK {
		t.Fatalf("in-flight request = %d during drain: %s", res.status, res.body)
	}
	if err := <-shutdownDone; err != nil {
		t.Fatalf("Shutdown after drain: %v", err)
	}
}

// TestConcurrencyLimit saturates a 1-slot server and asserts a waiter whose
// client gives up gets a 503 instead of hanging.
func TestConcurrencyLimit(t *testing.T) {
	s := newTestServer(t, func(c *Config) { c.MaxInflight = 1 })
	entered := make(chan struct{})
	release := make(chan struct{})
	var hookOnce sync.Once
	s.computeHook = func() {
		hookOnce.Do(func() {
			close(entered)
			<-release
		})
	}
	done := make(chan struct{})
	go func() {
		defer close(done)
		post(s, specBody("")) // occupies the only slot
	}()
	<-entered

	ctx, cancel := context.WithCancel(context.Background())
	req := httptest.NewRequest(http.MethodPost, "/v1/spec", strings.NewReader(specBody(`{"clock_ghz": 2.0}`))).WithContext(ctx)
	w := httptest.NewRecorder()
	go func() { time.Sleep(20 * time.Millisecond); cancel() }()
	s.ServeHTTP(w, req)
	if w.Code != http.StatusServiceUnavailable {
		t.Fatalf("saturated server returned %d, want 503", w.Code)
	}
	close(release)
	<-done
}

func TestCacheLRUEviction(t *testing.T) {
	c := newResponseCache(2)
	c.Put("a", []byte("A"))
	c.Put("b", []byte("B"))
	if _, ok := c.Get("a"); !ok { // refresh a
		t.Fatal("a missing")
	}
	c.Put("c", []byte("C")) // should evict b (LRU)
	if _, ok := c.Get("b"); ok {
		t.Error("b not evicted")
	}
	if v, ok := c.Get("a"); !ok || string(v) != "A" {
		t.Error("a lost")
	}
	if v, ok := c.Get("c"); !ok || string(v) != "C" {
		t.Error("c lost")
	}
	if c.Len() != 2 {
		t.Errorf("len = %d, want 2", c.Len())
	}
}

func TestArtifactRoundTripThroughService(t *testing.T) {
	gen, err := testGenerator()
	if err != nil {
		t.Fatal(err)
	}
	var buf bytes.Buffer
	if err := spec.SaveGenerator(&buf, gen, 1.5); err != nil {
		t.Fatal(err)
	}
	loaded, trainSeconds, err := spec.LoadGenerator(bytes.NewReader(buf.Bytes()))
	if err != nil {
		t.Fatal(err)
	}
	if trainSeconds != 1.5 {
		t.Errorf("train seconds = %v, want 1.5", trainSeconds)
	}

	// A server over the loaded artifact must produce the same bytes as a
	// server over the in-memory generator: persistence cannot perturb
	// predictions.
	s1 := newTestServer(t, nil)
	s2, err := New(Config{Generator: loaded})
	if err != nil {
		t.Fatal(err)
	}
	b1 := post(s1, specBody(""))
	b2 := post(s2, specBody(""))
	if b1.Code != http.StatusOK || b2.Code != http.StatusOK {
		t.Fatalf("status %d / %d", b1.Code, b2.Code)
	}
	if !bytes.Equal(b1.Body.Bytes(), b2.Body.Bytes()) {
		t.Errorf("loaded-artifact response differs from in-memory response:\n%s\nvs\n%s", b1.Body.String(), b2.Body.String())
	}
}

// TestDagDecodeMatchesIO pins the request DAG wire format to internal/dag's.
func TestDagDecodeMatchesIO(t *testing.T) {
	d, err := dag.Decode(strings.NewReader(testDAGJSON))
	if err != nil {
		t.Fatal(err)
	}
	if d.Size() != 4 {
		t.Errorf("size = %d", d.Size())
	}
}

func TestDebugMux(t *testing.T) {
	srv := newTestServer(t, nil)
	mux := DebugMux(srv)
	for _, path := range []string{"/debug/pprof/", "/healthz", "/metrics"} {
		req := httptest.NewRequest(http.MethodGet, path, nil)
		w := httptest.NewRecorder()
		mux.ServeHTTP(w, req)
		if w.Code != http.StatusOK {
			t.Errorf("GET %s on debug mux: status %d", path, w.Code)
		}
	}
	// The public server must NOT expose the profiling endpoints.
	req := httptest.NewRequest(http.MethodGet, "/debug/pprof/", nil)
	w := httptest.NewRecorder()
	srv.ServeHTTP(w, req)
	if w.Code == http.StatusOK {
		t.Fatal("public handler serves /debug/pprof/ — profiling endpoints leaked onto the public listener")
	}
	// Nil server: pprof only.
	req = httptest.NewRequest(http.MethodGet, "/debug/pprof/", nil)
	w = httptest.NewRecorder()
	DebugMux(nil).ServeHTTP(w, req)
	if w.Code != http.StatusOK {
		t.Errorf("nil-server debug mux: status %d", w.Code)
	}
}
