// GET /v1/observations: the flight recorder's read side. Serves the
// in-memory ring of terminal lease events (release / expiry / rebind) —
// newest first, filterable and paginated — with each row's trace_id linking
// back to /debug/traces. The durable history past the ring lives in the
// JSONL observation log under -obs-dir.
package service

import (
	"net/http"
	"strconv"
	"time"

	"rsgen/internal/obs"
)

const (
	defaultObservationsLimit = 100
	maxObservationsLimit     = 1000
)

// ObservationsResponse is the GET /v1/observations body.
type ObservationsResponse struct {
	// Total counts observations ever recorded; Matched counts the ring
	// entries passing the filter (the page is cut from these).
	Total   uint64 `json:"total"`
	Matched int    `json:"matched"`
	// Offset and Count locate the returned page, newest first.
	Offset int `json:"offset"`
	Count  int `json:"count"`
	// Observations is the page.
	Observations []obs.Observation `json:"observations"`
}

// handleObservations is GET /v1/observations. Query parameters:
//
//	backend      exact selection-backend match
//	fingerprint  exact DAG-fingerprint match (16 hex digits)
//	since        RFC 3339 lower bound on the observation time
//	limit        page size (default 100, max 1000)
//	offset       rows to skip, newest first (default 0)
func (s *Server) handleObservations(w http.ResponseWriter, r *http.Request) {
	q := r.URL.Query()
	filter := obs.ObservationFilter{
		Backend:     q.Get("backend"),
		Fingerprint: q.Get("fingerprint"),
	}
	if v := q.Get("since"); v != "" {
		t, err := time.Parse(time.RFC3339, v)
		if err != nil {
			writeError(w, http.StatusBadRequest, "invalid since %q: %v", v, err)
			return
		}
		filter.Since = t
	}
	limit := defaultObservationsLimit
	if v := q.Get("limit"); v != "" {
		n, err := strconv.Atoi(v)
		if err != nil || n <= 0 {
			writeError(w, http.StatusBadRequest, "invalid limit %q", v)
			return
		}
		limit = min(n, maxObservationsLimit)
	}
	offset := 0
	if v := q.Get("offset"); v != "" {
		n, err := strconv.Atoi(v)
		if err != nil || n < 0 {
			writeError(w, http.StatusBadRequest, "invalid offset %q", v)
			return
		}
		offset = n
	}

	rows := s.recorder.Recent(filter)
	resp := ObservationsResponse{
		Total:        s.recorder.Total(),
		Matched:      len(rows),
		Offset:       offset,
		Observations: []obs.Observation{},
	}
	if offset < len(rows) {
		page := rows[offset:]
		if len(page) > limit {
			page = page[:limit]
		}
		resp.Observations = page
	}
	resp.Count = len(resp.Observations)
	writeJSON(w, http.StatusOK, resp)
}
