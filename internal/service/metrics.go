package service

import (
	"runtime"
	"strconv"
	"time"

	"rsgen/internal/eval"
	"rsgen/internal/obs"
	"rsgen/internal/sched"
)

// metrics holds the service's request instruments, registered on the
// server's obs.Registry. Registration order reproduces the hand-rolled
// exposition this replaced byte-compatibly; the eval families read the
// process-wide eval.Stats counters at scrape time so one scrape covers both
// the HTTP front and the evaluation engine behind it.
type metrics struct {
	requests *obs.CounterVec
	latency  *obs.SummaryVec
	// stage is the per-pipeline-stage latency histogram fed from finished
	// trace spans (rsgend_stage_duration_seconds); registered by New after
	// the broker mount so the legacy series stay a contiguous prefix.
	stage *obs.HistogramVec

	cacheHits   *obs.Counter
	cacheMisses *obs.Counter
	dedupShared *obs.Counter
	rejected    *obs.Counter // 503s from the concurrency limiter
	inflight    *obs.Gauge

	// coalesceHits counts requests served by shape coalescing, labeled by
	// where the share happened: kind="cache" (a past computation's bytes
	// under the shape key) or kind="flight" (joined a shape-identical
	// in-flight computation). Byte-exact shares stay in cacheHits and
	// dedupShared; cacheMisses keeps its meaning of "no byte-exact entry".
	coalesceHits *obs.CounterVec
	// flightFallbacks counts followers that recomputed independently after
	// their leader failed.
	flightFallbacks *obs.Counter
	batchRequests   *obs.Counter // POST /v1/spec/batch bodies accepted
	batchMembers    *obs.Counter // members across all accepted batches

	// adviseLatency times POST /v1/advise search runs
	// (rsgend_moga_advise_duration_seconds); registered by New only when the
	// moga backend is enabled, like the reconciler families.
	adviseLatency *obs.Histogram
}

func newMetrics(reg *obs.Registry, cache *responseCache) *metrics {
	m := &metrics{}
	m.requests = reg.CounterVec("rsgend_requests_total", "path", "code")
	m.latency = reg.SummaryVec("rsgend_request_seconds", "path")
	m.cacheHits = reg.Counter("rsgend_spec_cache_hits_total")
	m.cacheMisses = reg.Counter("rsgend_spec_cache_misses_total")
	reg.IntGaugeFunc("rsgend_spec_cache_entries", func() int64 { return int64(cache.Len()) })
	m.dedupShared = reg.Counter("rsgend_dedup_shared_total")
	m.rejected = reg.Counter("rsgend_rejected_total")
	m.inflight = reg.Gauge("rsgend_inflight_requests")

	// Batch + coalescing families (this block sits between the legacy
	// service prefix and the eval families; the broker mount still follows
	// the whole service+eval group).
	reg.CounterFunc("rsgend_spec_cache_evictions_total", cache.Evictions)
	m.coalesceHits = reg.CounterVec("rsgend_coalesce_hits_total", "kind")
	m.flightFallbacks = reg.Counter("rsgend_flight_fallbacks_total")
	m.batchRequests = reg.Counter("rsgend_batch_requests_total")
	m.batchMembers = reg.Counter("rsgend_batch_members_total")

	// The evaluation engine's process-wide counters (internal/eval).
	reg.CounterFunc("rsgend_eval_points_total", func() uint64 { return eval.Snapshot().Points })
	reg.CounterFunc("rsgend_eval_cache_hits_total", func() uint64 { return eval.Snapshot().CacheHits })
	reg.CounterFunc("rsgend_eval_cache_misses_total", func() uint64 { return eval.Snapshot().CacheMisses })
	reg.CounterFunc("rsgend_eval_dedup_waits_total", func() uint64 { return eval.Snapshot().DedupWaits })
	reg.Func("rsgend_eval_stage_seconds", "counter", func() []obs.Sample {
		s := eval.Snapshot()
		return []obs.Sample{
			{Labels: `{stage="rc_build"}`, Value: obs.FormatFloat(s.RCBuild.Seconds())},
			{Labels: `{stage="schedule"}`, Value: obs.FormatFloat(s.Schedule.Seconds())},
			{Labels: `{stage="simulate"}`, Value: obs.FormatFloat(s.Simulate.Seconds())},
		}
	})
	// Scheduler state-pool effectiveness: gets ≫ allocs means the pooled
	// structures (PR 3) are actually being reused across requests and batch
	// members rather than reallocated.
	reg.CounterFunc("rsgend_sched_state_gets_total", func() uint64 { g, _ := sched.StatePoolStats(); return g })
	reg.CounterFunc("rsgend_sched_state_allocs_total", func() uint64 { _, a := sched.StatePoolStats(); return a })
	return m
}

// observe records one finished request.
func (m *metrics) observe(path string, code int, d time.Duration) {
	m.requests.With(path, strconv.Itoa(code)).Inc()
	m.latency.Observe(d, path)
}

// registerRuntime adds the Go runtime families: goroutine count, heap
// occupancy, and cumulative GC pause time. ReadMemStats stops the world for
// microseconds, which a scrape-rate caller never notices.
func registerRuntime(reg *obs.Registry) {
	reg.IntGaugeFunc("rsgend_go_goroutines", func() int64 { return int64(runtime.NumGoroutine()) })
	reg.IntGaugeFunc("rsgend_go_heap_alloc_bytes", func() int64 {
		var ms runtime.MemStats
		runtime.ReadMemStats(&ms)
		return int64(ms.HeapAlloc)
	})
	reg.FloatCounterFunc("rsgend_go_gc_pause_seconds_total", func() float64 {
		var ms runtime.MemStats
		runtime.ReadMemStats(&ms)
		return time.Duration(ms.PauseTotalNs).Seconds()
	})
	reg.CounterFunc("rsgend_go_gcs_total", func() uint64 {
		var ms runtime.MemStats
		runtime.ReadMemStats(&ms)
		return uint64(ms.NumGC)
	})
}
