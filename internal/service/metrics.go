package service

import (
	"fmt"
	"io"
	"sort"
	"sync"
	"sync/atomic"
	"time"

	"rsgen/internal/eval"
)

// metrics aggregates the service's request counters for the /metrics text
// exposition. All counters are monotone; the exposition adds the process's
// eval.Stats counters so one scrape covers both the HTTP front and the
// evaluation engine behind it.
type metrics struct {
	mu       sync.Mutex
	requests map[statusKey]uint64
	latSum   map[string]time.Duration
	latCount map[string]uint64

	cacheHits   atomic.Uint64
	cacheMisses atomic.Uint64
	dedupShared atomic.Uint64
	rejected    atomic.Uint64 // 503s from the concurrency limiter
	inflight    atomic.Int64
}

type statusKey struct {
	path string
	code int
}

func newMetrics() *metrics {
	return &metrics{
		requests: make(map[statusKey]uint64),
		latSum:   make(map[string]time.Duration),
		latCount: make(map[string]uint64),
	}
}

// observe records one finished request.
func (m *metrics) observe(path string, code int, d time.Duration) {
	m.mu.Lock()
	m.requests[statusKey{path, code}]++
	m.latSum[path] += d
	m.latCount[path]++
	m.mu.Unlock()
}

// expose writes the Prometheus text exposition. Series are sorted so
// repeated scrapes with the same counters are byte-identical.
func (m *metrics) expose(w io.Writer, cacheLen int) {
	m.mu.Lock()
	reqKeys := make([]statusKey, 0, len(m.requests))
	for k := range m.requests {
		reqKeys = append(reqKeys, k)
	}
	paths := make([]string, 0, len(m.latCount))
	for p := range m.latCount {
		paths = append(paths, p)
	}
	requests := make(map[statusKey]uint64, len(m.requests))
	for k, v := range m.requests {
		requests[k] = v
	}
	latSum := make(map[string]time.Duration, len(m.latSum))
	for k, v := range m.latSum {
		latSum[k] = v
	}
	latCount := make(map[string]uint64, len(m.latCount))
	for k, v := range m.latCount {
		latCount[k] = v
	}
	m.mu.Unlock()

	sort.Slice(reqKeys, func(i, j int) bool {
		if reqKeys[i].path != reqKeys[j].path {
			return reqKeys[i].path < reqKeys[j].path
		}
		return reqKeys[i].code < reqKeys[j].code
	})
	sort.Strings(paths)

	fmt.Fprintln(w, "# TYPE rsgend_requests_total counter")
	for _, k := range reqKeys {
		fmt.Fprintf(w, "rsgend_requests_total{path=%q,code=\"%d\"} %d\n", k.path, k.code, requests[k])
	}
	fmt.Fprintln(w, "# TYPE rsgend_request_seconds summary")
	for _, p := range paths {
		fmt.Fprintf(w, "rsgend_request_seconds_sum{path=%q} %g\n", p, latSum[p].Seconds())
		fmt.Fprintf(w, "rsgend_request_seconds_count{path=%q} %d\n", p, latCount[p])
	}
	fmt.Fprintln(w, "# TYPE rsgend_spec_cache_hits_total counter")
	fmt.Fprintf(w, "rsgend_spec_cache_hits_total %d\n", m.cacheHits.Load())
	fmt.Fprintln(w, "# TYPE rsgend_spec_cache_misses_total counter")
	fmt.Fprintf(w, "rsgend_spec_cache_misses_total %d\n", m.cacheMisses.Load())
	fmt.Fprintln(w, "# TYPE rsgend_spec_cache_entries gauge")
	fmt.Fprintf(w, "rsgend_spec_cache_entries %d\n", cacheLen)
	fmt.Fprintln(w, "# TYPE rsgend_dedup_shared_total counter")
	fmt.Fprintf(w, "rsgend_dedup_shared_total %d\n", m.dedupShared.Load())
	fmt.Fprintln(w, "# TYPE rsgend_rejected_total counter")
	fmt.Fprintf(w, "rsgend_rejected_total %d\n", m.rejected.Load())
	fmt.Fprintln(w, "# TYPE rsgend_inflight_requests gauge")
	fmt.Fprintf(w, "rsgend_inflight_requests %d\n", m.inflight.Load())

	// The evaluation engine's process-wide counters (internal/eval).
	s := eval.Snapshot()
	fmt.Fprintln(w, "# TYPE rsgend_eval_points_total counter")
	fmt.Fprintf(w, "rsgend_eval_points_total %d\n", s.Points)
	fmt.Fprintln(w, "# TYPE rsgend_eval_cache_hits_total counter")
	fmt.Fprintf(w, "rsgend_eval_cache_hits_total %d\n", s.CacheHits)
	fmt.Fprintln(w, "# TYPE rsgend_eval_cache_misses_total counter")
	fmt.Fprintf(w, "rsgend_eval_cache_misses_total %d\n", s.CacheMisses)
	fmt.Fprintln(w, "# TYPE rsgend_eval_stage_seconds counter")
	fmt.Fprintf(w, "rsgend_eval_stage_seconds{stage=\"rc_build\"} %g\n", s.RCBuild.Seconds())
	fmt.Fprintf(w, "rsgend_eval_stage_seconds{stage=\"schedule\"} %g\n", s.Schedule.Seconds())
	fmt.Fprintf(w, "rsgend_eval_stage_seconds{stage=\"simulate\"} %g\n", s.Simulate.Seconds())
}
