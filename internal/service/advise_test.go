package service

import (
	"encoding/json"
	"fmt"
	"net/http"
	"strings"
	"testing"

	"rsgen/internal/moga"
)

// mogaTestServer enables the multi-objective backend with a small budget so
// advise calls stay fast.
func mogaTestServer(t *testing.T) *Server {
	t.Helper()
	return newTestServer(t, func(c *Config) {
		c.Moga = &moga.Config{PopSize: 16, Generations: 6, Seed: 5}
	})
}

func adviseBody(opts, extra string) string {
	if opts == "" {
		opts = "{}"
	}
	if extra != "" {
		extra = ", " + extra
	}
	return fmt.Sprintf(`{"dag": %s, "options": %s%s}`, testDAGJSON, opts, extra)
}

// Without Config.Moga the endpoint does not exist at all.
func TestAdviseDisabledNotFound(t *testing.T) {
	s := newTestServer(t, nil)
	if w := do(s, http.MethodPost, "/v1/advise", adviseBody("", "")); w.Code != http.StatusNotFound {
		t.Fatalf("POST /v1/advise without moga = %d, want 404", w.Code)
	}
}

func TestAdviseFront(t *testing.T) {
	s := mogaTestServer(t)
	registerPlatform(t, s, `{"generate": {"clusters": 16, "year": 2006, "seed": 3}}`)

	w := do(s, http.MethodPost, "/v1/advise", adviseBody("", `"search": {"seed": 9}`))
	if w.Code != http.StatusOK {
		t.Fatalf("POST /v1/advise = %d: %s", w.Code, w.Body.String())
	}
	var resp AdviseResponse
	if err := json.Unmarshal(w.Body.Bytes(), &resp); err != nil {
		t.Fatalf("decoding advise response: %v", err)
	}
	if resp.Backend != "moga" {
		t.Errorf("backend = %q, want moga", resp.Backend)
	}
	if resp.FrontSize != len(resp.Front) || resp.FrontSize == 0 {
		t.Fatalf("front_size = %d with %d solutions", resp.FrontSize, len(resp.Front))
	}
	if resp.Evaluations <= 0 || resp.Generations <= 0 {
		t.Errorf("evaluations = %d, generations = %d, want both > 0", resp.Evaluations, resp.Generations)
	}
	if resp.MaskedHosts != 0 {
		t.Errorf("masked_hosts = %d on an unleased inventory", resp.MaskedHosts)
	}
	for i, sol := range resp.Front {
		if len(sol.Hosts) != resp.RCSize {
			t.Errorf("solution %d has %d hosts, want rc_size %d", i, len(sol.Hosts), resp.RCSize)
		}
		// Every pair on the front must be mutually non-dominated.
		for j, other := range resp.Front {
			if i != j && sol.Obj.Dominates(other.Obj) {
				t.Errorf("front solution %d dominates %d: %+v vs %+v", i, j, sol.Obj, other.Obj)
			}
		}
	}
	// The front is knee-ranked: distances never decrease.
	for i := 1; i < len(resp.Front); i++ {
		if resp.Front[i].KneeDistance < resp.Front[i-1].KneeDistance {
			t.Errorf("knee_distance out of order at %d: %v < %v",
				i, resp.Front[i].KneeDistance, resp.Front[i-1].KneeDistance)
		}
	}

	// The same request with the same seed is deterministic.
	w2 := do(s, http.MethodPost, "/v1/advise", adviseBody("", `"search": {"seed": 9}`))
	if w2.Code != http.StatusOK {
		t.Fatalf("second POST /v1/advise = %d", w2.Code)
	}
	if w.Body.String() != w2.Body.String() {
		t.Error("same advise request with same seed returned different bodies")
	}
}

func TestAdviseErrors(t *testing.T) {
	s := mogaTestServer(t)
	// Before any inventory: 412.
	if w := do(s, http.MethodPost, "/v1/advise", adviseBody("", "")); w.Code != http.StatusPreconditionFailed {
		t.Fatalf("advise without inventory = %d, want 412", w.Code)
	}
	registerPlatform(t, s, `{"generate": {"clusters": 8, "year": 2006, "seed": 3}}`)
	cases := []struct {
		name string
		body string
		want int
	}{
		{"bad json", "{not json", http.StatusBadRequest},
		{"no dag", `{"options": {}}`, http.StatusBadRequest},
		{"bad options", adviseBody(`{"clock_ghz": -1}`, ""), http.StatusBadRequest},
		{"population too big", adviseBody("", `"search": {"population": 100000}`), http.StatusBadRequest},
		{"negative generations", adviseBody("", `"search": {"generations": -1}`), http.StatusBadRequest},
		{"evaluations too big", adviseBody("", `"search": {"max_evaluations": 1000000}`), http.StatusBadRequest},
		{"ok", adviseBody("", ""), http.StatusOK},
	}
	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			w := do(s, http.MethodPost, "/v1/advise", tc.body)
			if w.Code != tc.want {
				t.Fatalf("status = %d, want %d; body: %s", w.Code, tc.want, w.Body.String())
			}
		})
	}
}

// Advise must see the same exclusion mask a real selection would: leased
// hosts disappear from the front unless include_leased is set.
func TestAdviseMasksLeasedHosts(t *testing.T) {
	s := mogaTestServer(t)
	registerPlatform(t, s, `{"generate": {"clusters": 16, "year": 2006, "seed": 3}}`)

	w := do(s, http.MethodPost, "/v1/select", selectBody("", `"backends": ["moga"]`))
	if w.Code != http.StatusOK {
		t.Fatalf("POST /v1/select backend=moga = %d: %s", w.Code, w.Body.String())
	}
	var sel SelectResponse
	if err := json.Unmarshal(w.Body.Bytes(), &sel); err != nil {
		t.Fatalf("decoding select response: %v", err)
	}
	if sel.Backend != "moga" {
		t.Fatalf("select backend = %q, want moga", sel.Backend)
	}
	leased := make(map[int64]bool)
	for _, h := range sel.Hosts {
		leased[int64(h)] = true
	}

	w = do(s, http.MethodPost, "/v1/advise", adviseBody("", ""))
	if w.Code != http.StatusOK {
		t.Fatalf("POST /v1/advise = %d: %s", w.Code, w.Body.String())
	}
	var resp AdviseResponse
	if err := json.Unmarshal(w.Body.Bytes(), &resp); err != nil {
		t.Fatalf("decoding advise response: %v", err)
	}
	if resp.MaskedHosts != len(leased) {
		t.Errorf("masked_hosts = %d, want the %d leased hosts", resp.MaskedHosts, len(leased))
	}
	for i, sol := range resp.Front {
		for _, h := range sol.Hosts {
			if leased[int64(h)] {
				t.Errorf("front solution %d includes leased host %d", i, h)
			}
		}
	}

	// include_leased advises over the whole universe again.
	w = do(s, http.MethodPost, "/v1/advise", adviseBody("", `"include_leased": true`))
	if w.Code != http.StatusOK {
		t.Fatalf("POST /v1/advise include_leased = %d: %s", w.Code, w.Body.String())
	}
	resp = AdviseResponse{}
	if err := json.Unmarshal(w.Body.Bytes(), &resp); err != nil {
		t.Fatalf("decoding advise response: %v", err)
	}
	if resp.MaskedHosts != 0 {
		t.Errorf("masked_hosts = %d with include_leased, want 0", resp.MaskedHosts)
	}
}

// The healthz body lists the effective selector backends (satellite: the
// list reflects whether moga is enabled).
func TestHealthzSelectorBackends(t *testing.T) {
	read := func(s *Server) []any {
		w := do(s, http.MethodGet, "/healthz", "")
		if w.Code != http.StatusOK {
			t.Fatalf("GET /healthz = %d", w.Code)
		}
		var body struct {
			Backends []any `json:"selector_backends"`
		}
		if err := json.Unmarshal(w.Body.Bytes(), &body); err != nil {
			t.Fatalf("decoding healthz: %v", err)
		}
		return body.Backends
	}
	plain := read(newTestServer(t, nil))
	if len(plain) != 3 || plain[0] != "vgdl" || plain[1] != "classad" || plain[2] != "sword" {
		t.Errorf("selector_backends without moga = %v", plain)
	}
	withMoga := read(mogaTestServer(t))
	if len(withMoga) != 4 || withMoga[3] != "moga" {
		t.Errorf("selector_backends with moga = %v", withMoga)
	}
}

// rsgend_moga_* families appear only when the backend is enabled, and count
// real searches.
func TestAdviseMetrics(t *testing.T) {
	plain := newTestServer(t, nil)
	if body := do(plain, http.MethodGet, "/metrics", "").Body.String(); strings.Contains(body, "rsgend_moga_") {
		t.Error("rsgend_moga_* exposed without the backend enabled")
	}

	s := mogaTestServer(t)
	registerPlatform(t, s, `{"generate": {"clusters": 8, "year": 2006, "seed": 3}}`)
	if w := do(s, http.MethodPost, "/v1/advise", adviseBody("", "")); w.Code != http.StatusOK {
		t.Fatalf("POST /v1/advise = %d: %s", w.Code, w.Body.String())
	}
	body := do(s, http.MethodGet, "/metrics", "").Body.String()
	for _, want := range []string{
		"rsgend_moga_searches_total 1",
		"rsgend_moga_evaluations_total",
		"rsgend_moga_generations_total",
		"rsgend_moga_front_size",
		"rsgend_moga_advise_duration_seconds_count 1",
	} {
		if !strings.Contains(body, want) {
			t.Errorf("metrics exposition missing %q", want)
		}
	}
}
