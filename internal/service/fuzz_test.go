package service

import (
	"strings"
	"testing"
)

// FuzzSelectRequest drives the /v1/select body decoder, the one parser the
// broker endpoints expose to untrusted input: whatever the bytes, it must
// return an error or a well-formed (request, dag) pair — never panic.
func FuzzSelectRequest(f *testing.F) {
	f.Add([]byte(selectBody("", "")))
	f.Add([]byte(selectBody(`{"clock_ghz": 2.8, "alternative_clocks": [2.0, 1.5]}`, `"backends": ["vgdl", "sword"], "ttl_seconds": 300`)))
	f.Add([]byte(`{"dag": {"tasks": []}}`))
	f.Add([]byte(`{"dag": 17}`))
	f.Add([]byte(`{"dag": {"tasks":[{"id":0,"cost":1}],"edges":[{"from":0,"to":0,"cost":1}]}}`))
	f.Add([]byte(`{}`))
	f.Add([]byte(``))
	f.Add([]byte(`[]`))
	f.Add([]byte(strings.Repeat(`{"dag":`, 50)))
	f.Fuzz(func(t *testing.T, data []byte) {
		req, d, err := decodeSelectRequest(data)
		if err != nil {
			if req != nil || d != nil {
				t.Fatalf("error %v with non-nil results", err)
			}
			return
		}
		if req == nil || d == nil {
			t.Fatal("nil results without error")
		}
		if d.Size() == 0 {
			t.Fatal("decoded dag has no tasks")
		}
	})
}
