package service

import (
	"strings"
	"testing"
)

// FuzzSelectRequest drives the /v1/select body decoder, the one parser the
// broker endpoints expose to untrusted input: whatever the bytes, it must
// return an error or a well-formed (request, dag) pair — never panic.
func FuzzSelectRequest(f *testing.F) {
	f.Add([]byte(selectBody("", "")))
	f.Add([]byte(selectBody(`{"clock_ghz": 2.8, "alternative_clocks": [2.0, 1.5]}`, `"backends": ["vgdl", "sword"], "ttl_seconds": 300`)))
	f.Add([]byte(`{"dag": {"tasks": []}}`))
	f.Add([]byte(`{"dag": 17}`))
	f.Add([]byte(`{"dag": {"tasks":[{"id":0,"cost":1}],"edges":[{"from":0,"to":0,"cost":1}]}}`))
	f.Add([]byte(`{}`))
	f.Add([]byte(``))
	f.Add([]byte(`[]`))
	f.Add([]byte(strings.Repeat(`{"dag":`, 50)))
	f.Fuzz(func(t *testing.T, data []byte) {
		req, d, err := decodeSelectRequest(data)
		if err != nil {
			if req != nil || d != nil {
				t.Fatalf("error %v with non-nil results", err)
			}
			return
		}
		if req == nil || d == nil {
			t.Fatal("nil results without error")
		}
		if d.Size() == 0 {
			t.Fatal("decoded dag has no tasks")
		}
	})
}

// FuzzAdviseRequest drives the /v1/advise body decoder the same way: any
// bytes must yield an error or a well-formed (request, dag) pair with the
// search budget inside the server's hard ceilings — never a panic.
func FuzzAdviseRequest(f *testing.F) {
	f.Add([]byte(adviseBody("", "")))
	f.Add([]byte(adviseBody(`{"min_memory_mb": 512}`, `"search": {"population": 24, "generations": 8, "seed": 3}, "include_leased": true`)))
	f.Add([]byte(adviseBody("", `"search": {"max_evaluations": 131072}`)))
	f.Add([]byte(`{"dag": {"tasks": []}}`))
	f.Add([]byte(`{"dag": 17, "search": {"population": -1}}`))
	f.Add([]byte(`{}`))
	f.Add([]byte(``))
	f.Add([]byte(`[]`))
	f.Add([]byte(strings.Repeat(`{"search":`, 50)))
	f.Fuzz(func(t *testing.T, data []byte) {
		req, d, err := decodeAdviseRequest(data)
		if err != nil {
			if req != nil || d != nil {
				t.Fatalf("error %v with non-nil results", err)
			}
			return
		}
		if req == nil || d == nil {
			t.Fatal("nil results without error")
		}
		if d.Size() == 0 {
			t.Fatal("decoded dag has no tasks")
		}
		sr := req.Search
		if sr.Population < 0 || sr.Population > maxAdvisePopulation ||
			sr.Generations < 0 || sr.Generations > maxAdviseGenerations ||
			sr.MaxEvaluations < 0 || sr.MaxEvaluations > maxAdviseEvaluations {
			t.Fatalf("accepted out-of-bounds search budget %+v", sr)
		}
	})
}
