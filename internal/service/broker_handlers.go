// Broker endpoints: the closed-loop selection lifecycle over HTTP.
//
//   - PUT  /v1/platform — generate and register a synthetic inventory
//   - GET  /v1/platform — inventory summary plus lease occupancy
//   - POST /v1/select   — run the spec ladder: select → lease → bind
//   - POST /v1/release  — free a lease's hosts
//
// Status mapping: 412 when no inventory is registered, 409 (with the full
// rung trace) when every rung of the ladder fails, 503 while draining, 504
// on deadline, 404 for unknown lease IDs.
package service

import (
	"bytes"
	"context"
	"encoding/json"
	"errors"
	"fmt"
	"io"
	"net/http"
	"slices"
	"time"

	"rsgen/internal/bind"
	"rsgen/internal/broker"
	"rsgen/internal/dag"
	"rsgen/internal/obs"
	"rsgen/internal/platform"
	"rsgen/internal/spec"
	"rsgen/internal/xrand"
)

// SelectRequest is the POST /v1/select body: a /v1/spec request plus the
// closed-loop knobs (backends, lease TTL, bind-wait bound).
type SelectRequest struct {
	// Dag is the workflow in the daggen JSON form.
	Dag json.RawMessage `json:"dag"`
	// Options tune the base specification; alternative_clocks extends the
	// fallback ladder exactly as in /v1/spec.
	Options SpecOptions `json:"options"`
	// Backends names the selection backends to try per rung, in order;
	// empty defaults to ["vgdl"].
	Backends []string `json:"backends,omitempty"`
	// TTLSeconds overrides the broker's default lease lifetime.
	TTLSeconds float64 `json:"ttl_seconds,omitempty"`
	// MaxBindWaitSeconds overrides the acceptable manager delay.
	MaxBindWaitSeconds float64 `json:"max_bind_wait_seconds,omitempty"`
}

// SelectResponse is the POST /v1/select success body.
type SelectResponse struct {
	LeaseID            string            `json:"lease_id"`
	FallbackDepth      int               `json:"fallback_depth"`
	Backend            string            `json:"backend"`
	Heuristic          string            `json:"heuristic"`
	RCSize             int               `json:"rc_size"`
	MinClockGHz        float64           `json:"min_clock_ghz"`
	MaxClockGHz        float64           `json:"max_clock_ghz"`
	Hosts              []platform.HostID `json:"hosts"`
	Clusters           int               `json:"clusters"`
	AvailableAtSeconds float64           `json:"available_at_seconds"`
	ExpiresInSeconds   float64           `json:"expires_in_seconds"`
	// PredictedTurnAroundSeconds is the makespan the winning spec promises
	// on the bound collection — the prediction the flight recorder scores
	// when the lease ends. 0 when unavailable.
	PredictedTurnAroundSeconds float64              `json:"predicted_turn_around_seconds,omitempty"`
	BoundAt                    time.Time            `json:"bound_at,omitzero"`
	Trace                      []broker.RungAttempt `json:"trace"`
}

// decodeSelectRequest parses a /v1/select body: the envelope, then the
// embedded DAG. It is a pure []byte → value function so the fuzz target can
// drive it without an HTTP server.
func decodeSelectRequest(data []byte) (*SelectRequest, *dag.DAG, error) {
	var req SelectRequest
	if err := json.Unmarshal(data, &req); err != nil {
		return nil, nil, fmt.Errorf("malformed request JSON: %w", err)
	}
	if len(req.Dag) == 0 {
		return nil, nil, errors.New("request has no dag")
	}
	d, err := dag.Decode(bytes.NewReader(req.Dag))
	if err != nil {
		return nil, nil, fmt.Errorf("invalid dag: %w", err)
	}
	return &req, d, nil
}

// handleSelect is POST /v1/select: the full generate→select→lease→bind
// lifecycle. Unlike /v1/spec it is never cached or deduplicated — every call
// mutates the lease table.
func (s *Server) handleSelect(w http.ResponseWriter, r *http.Request) {
	select {
	case s.sem <- struct{}{}:
		defer func() { <-s.sem }()
	case <-r.Context().Done():
		s.metrics.rejected.Add(1)
		writeError(w, http.StatusServiceUnavailable, "server saturated: %v", r.Context().Err())
		return
	}

	body, err := io.ReadAll(http.MaxBytesReader(w, r.Body, s.cfg.MaxBodyBytes))
	if err != nil {
		var tooBig *http.MaxBytesError
		if errors.As(err, &tooBig) {
			writeError(w, http.StatusRequestEntityTooLarge, "request body exceeds %d bytes", tooBig.Limit)
			return
		}
		writeError(w, http.StatusBadRequest, "read request: %v", err)
		return
	}
	_, decSpan := obs.StartSpan(r.Context(), "decode")
	req, d, err := decodeSelectRequest(body)
	if err != nil {
		decSpan.EndErr(err)
		writeError(w, http.StatusBadRequest, "%v", err)
		return
	}
	if err := s.validateOptions(req.Options); err != nil {
		decSpan.EndErr(err)
		writeError(w, http.StatusBadRequest, "invalid options: %v", err)
		return
	}
	registered := s.brk.Backends()
	for _, b := range req.Backends {
		if !slices.Contains(registered, b) {
			decSpan.EndErr(fmt.Errorf("unknown backend %q", b))
			writeError(w, http.StatusBadRequest, "unknown backend %q (have %v)", b, registered)
			return
		}
	}
	if req.TTLSeconds < 0 || req.MaxBindWaitSeconds < 0 {
		decSpan.EndErr(errors.New("negative ttl or bind wait"))
		writeError(w, http.StatusBadRequest, "ttl_seconds and max_bind_wait_seconds must be >= 0")
		return
	}
	decSpan.End()

	ctx, cancel := context.WithTimeout(r.Context(), s.cfg.Timeout)
	defer cancel()
	o := req.Options
	breq := broker.Request{
		Dag: d,
		Options: spec.Options{
			Threshold:              o.Threshold,
			UtilityLambda:          o.UtilityLambda,
			ClockGHz:               o.ClockGHz,
			HeterogeneityTolerance: o.HeterogeneityTolerance,
			MinMemoryMB:            o.MinMemoryMB,
			SCRValue:               o.SCR,
			MixedParallel:          o.MixedParallel,
			Heuristic:              o.Heuristic,
		},
		AlternativeClocks:    o.AlternativeClocks,
		AlternativeTolerance: o.AlternativeTolerance,
		Backends:             req.Backends,
		TTL:                  time.Duration(req.TTLSeconds * float64(time.Second)),
		MaxBindWaitSeconds:   req.MaxBindWaitSeconds,
	}
	out, err := s.brk.Select(ctx, breq)
	if err != nil {
		var unsat *broker.UnsatisfiableError
		switch {
		case errors.Is(err, broker.ErrNoInventory):
			writeError(w, http.StatusPreconditionFailed, "%v (PUT /v1/platform first)", err)
		case errors.Is(err, broker.ErrDraining):
			writeError(w, http.StatusServiceUnavailable, "%v", err)
		case errors.As(err, &unsat):
			// trace_id lets the operator jump from the 409 body straight to
			// the span tree in /debug/traces.
			body := map[string]any{
				"error": "no rung of the specification ladder could be satisfied",
				"trace": unsat.Trace,
			}
			if tr := obs.TraceFrom(r.Context()); tr != nil {
				body["trace_id"] = tr.ID
			}
			writeJSON(w, http.StatusConflict, body)
		case errors.Is(err, context.DeadlineExceeded):
			writeError(w, http.StatusGatewayTimeout, "select: %v", err)
		case errors.Is(err, context.Canceled):
			writeError(w, http.StatusServiceUnavailable, "select: %v", err)
		default:
			writeError(w, http.StatusBadRequest, "select: %v", err)
		}
		return
	}

	// Hand the outcome (with its originating request) to the reconciler so
	// the closed loop owns this lease's lifetime from here on.
	s.rec.Track(out, breq)
	w.Header().Set("X-Fallback-Depth", fmt.Sprintf("%d", out.Rung))
	writeJSON(w, http.StatusOK, SelectResponse{
		LeaseID:                    out.Lease.ID,
		FallbackDepth:              out.Rung,
		Backend:                    out.Backend,
		Heuristic:                  out.Spec.Heuristic,
		RCSize:                     out.Spec.RCSize,
		MinClockGHz:                out.Spec.MinClockGHz,
		MaxClockGHz:                out.Spec.MaxClockGHz,
		Hosts:                      out.Lease.Hosts,
		Clusters:                   out.Clusters,
		AvailableAtSeconds:         out.AvailableAtSeconds,
		ExpiresInSeconds:           time.Until(out.Lease.Expires).Seconds(),
		PredictedTurnAroundSeconds: out.Lease.PredictedTurnAround,
		BoundAt:                    out.Lease.BoundAt,
		Trace:                      out.Trace,
	})
}

// ReleaseRequest is the POST /v1/release body.
type ReleaseRequest struct {
	LeaseID string `json:"lease_id"`
	// ObservedSeconds, when positive, is the client-reported makespan of
	// the work that ran on the lease — the flight recorder scores it
	// against the bind-time prediction. Omitted, the observation falls back
	// to the lease's wall-clock hold time.
	ObservedSeconds float64 `json:"observed_seconds,omitempty"`
}

// handleRelease is POST /v1/release: free a lease's hosts.
func (s *Server) handleRelease(w http.ResponseWriter, r *http.Request) {
	r.Body = http.MaxBytesReader(w, r.Body, s.cfg.MaxBodyBytes)
	var req ReleaseRequest
	if err := json.NewDecoder(r.Body).Decode(&req); err != nil {
		writeError(w, http.StatusBadRequest, "malformed request JSON: %v", err)
		return
	}
	if req.LeaseID == "" {
		writeError(w, http.StatusBadRequest, "request has no lease_id")
		return
	}
	if req.ObservedSeconds < 0 {
		writeError(w, http.StatusBadRequest, "observed_seconds %v < 0", req.ObservedSeconds)
		return
	}
	// Tracked sessions release through the reconciler: the client's handle
	// may point at a lease that was transparently swapped, so the current
	// lease is the one to free, and the response says whether that happened.
	// The request context rides along so the release's trace ID lands on the
	// lease's flight-recorder observation.
	if s.rec != nil {
		if rr := s.rec.ReleaseObserved(r.Context(), req.LeaseID, req.ObservedSeconds); rr.Found {
			if !rr.Released {
				writeError(w, http.StatusNotFound, "unknown or expired lease %q", req.LeaseID)
				return
			}
			writeJSON(w, http.StatusOK, map[string]any{
				"released": true,
				"lease_id": req.LeaseID,
				"rebound":  rr.Rebound,
				"rebinds":  rr.Rebinds,
			})
			return
		}
	}
	if !s.brk.ReleaseObserved(r.Context(), req.LeaseID, req.ObservedSeconds) {
		writeError(w, http.StatusNotFound, "unknown or expired lease %q", req.LeaseID)
		return
	}
	writeJSON(w, http.StatusOK, map[string]any{"released": true, "lease_id": req.LeaseID, "rebound": false})
}

// PlatformRequest is the PUT /v1/platform body: generate a synthetic
// inventory and register it with the broker (replacing any previous one and
// dropping its leases).
type PlatformRequest struct {
	// Generate parameterizes the synthetic platform (required).
	Generate *GeneratePlatform `json:"generate"`
	// MeanQueueWaitSeconds, when positive, assigns the mixed synthetic
	// manager population (⅓ dedicated, ⅓ batch-queued around this mean,
	// ⅓ reservations); 0 assigns dedicated managers everywhere.
	MeanQueueWaitSeconds float64 `json:"mean_queue_wait_seconds,omitempty"`
	// ManagerSeed seeds the synthetic manager draw; 0 defaults to 1.
	ManagerSeed uint64 `json:"manager_seed,omitempty"`
	// Managers overrides individual cluster managers after the base
	// assignment.
	Managers []ManagerOverride `json:"managers,omitempty"`
}

// GeneratePlatform mirrors platform.GenSpec plus the RNG seed.
type GeneratePlatform struct {
	Clusters        int     `json:"clusters"`
	Year            int     `json:"year,omitempty"`
	MeanClusterSize float64 `json:"mean_cluster_size,omitempty"`
	Seed            uint64  `json:"seed,omitempty"`
}

// ManagerOverride pins one cluster's manager.
type ManagerOverride struct {
	Cluster          int     `json:"cluster"`
	Discipline       string  `json:"discipline"` // dedicated | batch-queue | reservation
	QueueWaitSeconds float64 `json:"queue_wait_seconds,omitempty"`
	NextSlotSeconds  float64 `json:"next_slot_seconds,omitempty"`
	MaxHosts         int     `json:"max_hosts,omitempty"`
}

// maxPlatformClusters bounds generated inventories so one request cannot
// allocate an arbitrarily large platform in the server.
const maxPlatformClusters = 10000

func parseDiscipline(s string) (bind.Discipline, error) {
	switch s {
	case "dedicated":
		return bind.Dedicated, nil
	case "batch-queue":
		return bind.BatchQueue, nil
	case "reservation":
		return bind.Reservation, nil
	}
	return 0, fmt.Errorf("unknown discipline %q (have dedicated, batch-queue, reservation)", s)
}

// handlePlatformPut is PUT /v1/platform.
func (s *Server) handlePlatformPut(w http.ResponseWriter, r *http.Request) {
	r.Body = http.MaxBytesReader(w, r.Body, s.cfg.MaxBodyBytes)
	var req PlatformRequest
	if err := json.NewDecoder(r.Body).Decode(&req); err != nil {
		writeError(w, http.StatusBadRequest, "malformed request JSON: %v", err)
		return
	}
	if req.Generate == nil {
		writeError(w, http.StatusBadRequest, "request has no generate spec")
		return
	}
	g := req.Generate
	if g.Clusters < 1 || g.Clusters > maxPlatformClusters {
		writeError(w, http.StatusBadRequest, "generate.clusters %d outside [1, %d]", g.Clusters, maxPlatformClusters)
		return
	}
	if req.MeanQueueWaitSeconds < 0 {
		writeError(w, http.StatusBadRequest, "mean_queue_wait_seconds %v < 0", req.MeanQueueWaitSeconds)
		return
	}
	seed := g.Seed
	if seed == 0 {
		seed = 1
	}
	p, err := platform.Generate(platform.GenSpec{
		Clusters:        g.Clusters,
		Year:            g.Year,
		MeanClusterSize: g.MeanClusterSize,
	}, xrand.New(seed))
	if err != nil {
		writeError(w, http.StatusBadRequest, "generate platform: %v", err)
		return
	}
	var grid *bind.Grid
	if req.MeanQueueWaitSeconds > 0 {
		mseed := req.ManagerSeed
		if mseed == 0 {
			mseed = 1
		}
		grid = bind.NewGrid(p, req.MeanQueueWaitSeconds, xrand.New(mseed))
	} else {
		grid = bind.DedicatedGrid(p)
	}
	for _, m := range req.Managers {
		if m.Cluster < 0 || m.Cluster >= len(p.Clusters) {
			writeError(w, http.StatusBadRequest, "manager override cluster %d outside [0, %d)", m.Cluster, len(p.Clusters))
			return
		}
		disc, err := parseDiscipline(m.Discipline)
		if err != nil {
			writeError(w, http.StatusBadRequest, "manager override for cluster %d: %v", m.Cluster, err)
			return
		}
		grid.SetManager(bind.Manager{
			Cluster:    m.Cluster,
			Discipline: disc,
			QueueWait:  m.QueueWaitSeconds,
			NextSlot:   m.NextSlotSeconds,
			MaxHosts:   m.MaxHosts,
		})
	}
	if err := s.brk.RegisterInventory(p, grid); err != nil {
		writeError(w, http.StatusInternalServerError, "register inventory: %v", err)
		return
	}
	writeJSON(w, http.StatusOK, map[string]any{
		"clusters": len(p.Clusters),
		"hosts":    p.NumHosts(),
	})
}

// handlePlatformGet is GET /v1/platform: inventory summary plus lease
// occupancy.
func (s *Server) handlePlatformGet(w http.ResponseWriter, r *http.Request) {
	p, grid := s.brk.Inventory()
	if p == nil {
		writeError(w, http.StatusNotFound, "no inventory registered (PUT /v1/platform first)")
		return
	}
	disciplines := map[string]int{}
	for i := 0; i < grid.NumClusters(); i++ {
		disciplines[grid.Manager(i).Discipline.String()]++
	}
	stats := s.brk.LeaseStats()
	writeJSON(w, http.StatusOK, map[string]any{
		"clusters":    len(p.Clusters),
		"hosts":       p.NumHosts(),
		"generation":  s.brk.Generation(),
		"disciplines": disciplines,
		"leases": map[string]any{
			"active_leases":  stats.ActiveLeases,
			"leased_hosts":   stats.LeasedHosts,
			"expired_total":  stats.ExpiredTotal,
			"free_hosts":     p.NumHosts() - stats.LeasedHosts,
			"occupancy_frac": float64(stats.LeasedHosts) / float64(p.NumHosts()),
		},
	})
}
