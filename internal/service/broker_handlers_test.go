package service

import (
	"encoding/json"
	"fmt"
	"net/http"
	"net/http/httptest"
	"strings"
	"testing"
)

func do(s http.Handler, method, path, body string) *httptest.ResponseRecorder {
	req := httptest.NewRequest(method, path, strings.NewReader(body))
	w := httptest.NewRecorder()
	s.ServeHTTP(w, req)
	return w
}

func registerPlatform(t *testing.T, s http.Handler, body string) {
	t.Helper()
	w := do(s, http.MethodPut, "/v1/platform", body)
	if w.Code != http.StatusOK {
		t.Fatalf("PUT /v1/platform = %d: %s", w.Code, w.Body.String())
	}
}

func selectBody(opts, extra string) string {
	if opts == "" {
		opts = "{}"
	}
	if extra != "" {
		extra = ", " + extra
	}
	return fmt.Sprintf(`{"dag": %s, "options": %s%s}`, testDAGJSON, opts, extra)
}

// TestSelectLifecycle walks the whole closed loop over HTTP: register an
// inventory, select with a deliberately unsatisfiable optimal rung, verify
// the fallback trace, check occupancy, release, check occupancy again.
func TestSelectLifecycle(t *testing.T) {
	s := newTestServer(t, nil)
	// A 2003-era platform tops out at 2.4 GHz, so the 2.8 GHz optimal rung
	// dies at selection and the 2.0 GHz alternative must win.
	registerPlatform(t, s, `{"generate": {"clusters": 24, "year": 2003, "seed": 7}}`)

	w := do(s, http.MethodPost, "/v1/select",
		selectBody(`{"clock_ghz": 2.8, "alternative_clocks": [2.0], "alternative_tolerance": 2}`, `"ttl_seconds": 300`))
	if w.Code != http.StatusOK {
		t.Fatalf("POST /v1/select = %d: %s", w.Code, w.Body.String())
	}
	var resp SelectResponse
	if err := json.Unmarshal(w.Body.Bytes(), &resp); err != nil {
		t.Fatalf("decoding select response: %v", err)
	}
	if resp.LeaseID == "" {
		t.Fatal("response has no lease_id")
	}
	if resp.FallbackDepth != 1 {
		t.Errorf("fallback_depth = %d, want 1", resp.FallbackDepth)
	}
	if got := w.Header().Get("X-Fallback-Depth"); got != "1" {
		t.Errorf("X-Fallback-Depth = %q, want 1", got)
	}
	if resp.MaxClockGHz != 2.0 {
		t.Errorf("winning clock %v, want the 2.0 GHz alternative", resp.MaxClockGHz)
	}
	if len(resp.Hosts) != resp.RCSize || resp.RCSize == 0 {
		t.Errorf("response lists %d hosts for rc_size %d", len(resp.Hosts), resp.RCSize)
	}
	if len(resp.Trace) < 2 {
		t.Fatalf("trace has %d entries, want the failed rung plus the bound one", len(resp.Trace))
	}
	if first := resp.Trace[0]; first.Rung != 0 || first.Stage != "select" || first.Err == "" {
		t.Errorf("first trace entry %+v, want a rung-0 selection failure", first)
	}
	if last := resp.Trace[len(resp.Trace)-1]; last.Stage != "bound" {
		t.Errorf("last trace entry %+v, want stage bound", last)
	}
	if resp.ExpiresInSeconds <= 0 || resp.ExpiresInSeconds > 300 {
		t.Errorf("expires_in_seconds = %v, want (0, 300]", resp.ExpiresInSeconds)
	}

	// Occupancy and the inventory generation are visible through
	// GET /v1/platform…
	var info struct {
		Generation uint64 `json:"generation"`
		Leases     struct {
			ActiveLeases int `json:"active_leases"`
			LeasedHosts  int `json:"leased_hosts"`
		} `json:"leases"`
	}
	w = do(s, http.MethodGet, "/v1/platform", "")
	if w.Code != http.StatusOK {
		t.Fatalf("GET /v1/platform = %d: %s", w.Code, w.Body.String())
	}
	if err := json.Unmarshal(w.Body.Bytes(), &info); err != nil {
		t.Fatal(err)
	}
	if info.Leases.ActiveLeases != 1 || info.Leases.LeasedHosts != resp.RCSize {
		t.Errorf("occupancy %+v after one selection", info.Leases)
	}
	if info.Generation != 1 {
		t.Errorf("generation %d after first registration, want 1", info.Generation)
	}

	// …and through /metrics.
	w = do(s, http.MethodGet, "/metrics", "")
	metricsText := w.Body.String()
	for _, want := range []string{
		"rsgend_broker_fallback_depth_total{depth=\"1\"} 1",
		fmt.Sprintf("rsgend_broker_leased_hosts %d", resp.RCSize),
		"rsgend_broker_active_leases 1",
		"rsgend_broker_selections_total 1",
	} {
		if !strings.Contains(metricsText, want) {
			t.Errorf("metrics missing %q", want)
		}
	}

	// Release, then the lease is gone.
	w = do(s, http.MethodPost, "/v1/release", fmt.Sprintf(`{"lease_id": %q}`, resp.LeaseID))
	if w.Code != http.StatusOK {
		t.Fatalf("POST /v1/release = %d: %s", w.Code, w.Body.String())
	}
	w = do(s, http.MethodPost, "/v1/release", fmt.Sprintf(`{"lease_id": %q}`, resp.LeaseID))
	if w.Code != http.StatusNotFound {
		t.Errorf("double release = %d, want 404", w.Code)
	}
	w = do(s, http.MethodGet, "/v1/platform", "")
	if err := json.Unmarshal(w.Body.Bytes(), &info); err != nil {
		t.Fatal(err)
	}
	if info.Leases.ActiveLeases != 0 || info.Leases.LeasedHosts != 0 {
		t.Errorf("occupancy %+v after release", info.Leases)
	}

	// Re-registering bumps the inventory epoch — the bump is how clients
	// detect that any leases they held died with the old inventory.
	registerPlatform(t, s, `{"generate": {"clusters": 16, "year": 2006, "seed": 3}}`)
	w = do(s, http.MethodGet, "/v1/platform", "")
	if err := json.Unmarshal(w.Body.Bytes(), &info); err != nil {
		t.Fatal(err)
	}
	if info.Generation != 2 {
		t.Errorf("generation %d after re-registration, want 2", info.Generation)
	}
}

func TestSelectBackendChoice(t *testing.T) {
	s := newTestServer(t, nil)
	registerPlatform(t, s, `{"generate": {"clusters": 16, "year": 2006, "seed": 3}}`)
	for _, backend := range []string{"vgdl", "classad", "sword"} {
		t.Run(backend, func(t *testing.T) {
			w := do(s, http.MethodPost, "/v1/select",
				selectBody(`{"clock_ghz": 2.0}`, fmt.Sprintf(`"backends": [%q]`, backend)))
			if w.Code != http.StatusOK {
				t.Fatalf("select via %s = %d: %s", backend, w.Code, w.Body.String())
			}
			var resp SelectResponse
			if err := json.Unmarshal(w.Body.Bytes(), &resp); err != nil {
				t.Fatal(err)
			}
			if resp.Backend != backend {
				t.Errorf("backend = %q, want %q", resp.Backend, backend)
			}
			if w := do(s, http.MethodPost, "/v1/release", fmt.Sprintf(`{"lease_id": %q}`, resp.LeaseID)); w.Code != http.StatusOK {
				t.Fatalf("release = %d", w.Code)
			}
		})
	}
}

func TestSelectErrorStatuses(t *testing.T) {
	s := newTestServer(t, nil)

	// No inventory yet → 412.
	if w := do(s, http.MethodPost, "/v1/select", selectBody("", "")); w.Code != http.StatusPreconditionFailed {
		t.Errorf("select without inventory = %d, want 412", w.Code)
	}
	// GET /v1/platform without inventory → 404.
	if w := do(s, http.MethodGet, "/v1/platform", ""); w.Code != http.StatusNotFound {
		t.Errorf("GET /v1/platform without inventory = %d, want 404", w.Code)
	}

	registerPlatform(t, s, `{"generate": {"clusters": 8, "year": 2006, "seed": 3}}`)

	cases := []struct {
		name string
		body string
		want int
	}{
		{"bad json", "{not json", http.StatusBadRequest},
		{"no dag", `{"options": {}}`, http.StatusBadRequest},
		{"bad options", selectBody(`{"clock_ghz": -1}`, ""), http.StatusBadRequest},
		{"unknown backend", selectBody("", `"backends": ["condor-g"]`), http.StatusBadRequest},
		{"negative ttl", selectBody("", `"ttl_seconds": -1`), http.StatusBadRequest},
		{"unsatisfiable", selectBody(`{"clock_ghz": 9.9}`, ""), http.StatusConflict},
	}
	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			w := do(s, http.MethodPost, "/v1/select", tc.body)
			if w.Code != tc.want {
				t.Fatalf("status = %d, want %d; body: %s", w.Code, tc.want, w.Body.String())
			}
		})
	}

	// The 409 carries the rung trace.
	w := do(s, http.MethodPost, "/v1/select", selectBody(`{"clock_ghz": 9.9}`, ""))
	var conflict struct {
		Error string            `json:"error"`
		Trace []json.RawMessage `json:"trace"`
	}
	if err := json.Unmarshal(w.Body.Bytes(), &conflict); err != nil {
		t.Fatal(err)
	}
	if conflict.Error == "" || len(conflict.Trace) == 0 {
		t.Errorf("conflict body %s lacks error or trace", w.Body.String())
	}

	// Draining broker → 503.
	s.brk.BeginDrain()
	if w := do(s, http.MethodPost, "/v1/select", selectBody("", "")); w.Code != http.StatusServiceUnavailable {
		t.Errorf("select while draining = %d, want 503", w.Code)
	}
}

func TestPlatformPutValidation(t *testing.T) {
	s := newTestServer(t, nil)
	cases := []struct {
		name string
		body string
		want int
	}{
		{"bad json", "{", http.StatusBadRequest},
		{"no generate", `{}`, http.StatusBadRequest},
		{"zero clusters", `{"generate": {"clusters": 0}}`, http.StatusBadRequest},
		{"too many clusters", `{"generate": {"clusters": 10001}}`, http.StatusBadRequest},
		{"negative queue wait", `{"generate": {"clusters": 2}, "mean_queue_wait_seconds": -5}`, http.StatusBadRequest},
		{"override out of range", `{"generate": {"clusters": 2}, "managers": [{"cluster": 99, "discipline": "dedicated"}]}`, http.StatusBadRequest},
		{"override bad discipline", `{"generate": {"clusters": 2}, "managers": [{"cluster": 0, "discipline": "lottery"}]}`, http.StatusBadRequest},
		{"ok dedicated", `{"generate": {"clusters": 4, "year": 2006, "seed": 3}}`, http.StatusOK},
		{"ok mixed managers", `{"generate": {"clusters": 4, "year": 2006, "seed": 3}, "mean_queue_wait_seconds": 600, "manager_seed": 5, "managers": [{"cluster": 0, "discipline": "batch-queue", "queue_wait_seconds": 30}]}`, http.StatusOK},
	}
	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			w := do(s, http.MethodPut, "/v1/platform", tc.body)
			if w.Code != tc.want {
				t.Fatalf("status = %d, want %d; body: %s", w.Code, tc.want, w.Body.String())
			}
		})
	}
}

// TestPlatformReplaceDropsLeases: re-registering the inventory invalidates
// outstanding leases (their hosts no longer exist).
func TestPlatformReplaceDropsLeases(t *testing.T) {
	s := newTestServer(t, nil)
	registerPlatform(t, s, `{"generate": {"clusters": 8, "year": 2006, "seed": 3}}`)
	w := do(s, http.MethodPost, "/v1/select", selectBody(`{"clock_ghz": 2.0}`, ""))
	if w.Code != http.StatusOK {
		t.Fatalf("select = %d: %s", w.Code, w.Body.String())
	}
	var resp SelectResponse
	if err := json.Unmarshal(w.Body.Bytes(), &resp); err != nil {
		t.Fatal(err)
	}
	registerPlatform(t, s, `{"generate": {"clusters": 8, "year": 2006, "seed": 4}}`)
	if w := do(s, http.MethodPost, "/v1/release", fmt.Sprintf(`{"lease_id": %q}`, resp.LeaseID)); w.Code != http.StatusNotFound {
		t.Errorf("release after re-registration = %d, want 404", w.Code)
	}
}

func TestReleaseValidation(t *testing.T) {
	s := newTestServer(t, nil)
	if w := do(s, http.MethodPost, "/v1/release", "{bad"); w.Code != http.StatusBadRequest {
		t.Errorf("bad json release = %d, want 400", w.Code)
	}
	if w := do(s, http.MethodPost, "/v1/release", "{}"); w.Code != http.StatusBadRequest {
		t.Errorf("empty lease_id release = %d, want 400", w.Code)
	}
	if w := do(s, http.MethodPost, "/v1/release", `{"lease_id": "lease-404"}`); w.Code != http.StatusNotFound {
		t.Errorf("unknown lease release = %d, want 404", w.Code)
	}
}
