// POST /v1/advise — the what-if advisor over the multi-objective backend.
//
// The endpoint answers "what could I get, and at what cost?" without taking
// a lease: it generates the specification for the posted DAG, runs the moga
// Pareto search against the registered inventory under the same exclusion
// mask a real selection would see (leased hosts plus reconciler exclusions),
// and returns the full knee-ranked front — per-solution hosts and objective
// vectors — as JSON. It mounts only when Config.Moga enables the backend.
package service

import (
	"bytes"
	"context"
	"encoding/json"
	"errors"
	"fmt"
	"io"
	"net/http"
	"time"

	"rsgen/internal/dag"
	"rsgen/internal/moga"
	"rsgen/internal/obs"
	"rsgen/internal/spec"
)

// AdviseRequest is the POST /v1/advise body: a /v1/spec request plus search
// knobs and the leased-host toggle.
type AdviseRequest struct {
	// Dag is the workflow in the daggen JSON form.
	Dag json.RawMessage `json:"dag"`
	// Options tune the base specification exactly as in /v1/spec.
	Options SpecOptions `json:"options"`
	// Search overrides the server's default search budget.
	Search AdviseSearchOptions `json:"search"`
	// IncludeLeased advises over the whole universe, ignoring current
	// leases and exclusions — capacity planning rather than "what could I
	// get right now".
	IncludeLeased bool `json:"include_leased,omitempty"`
}

// AdviseSearchOptions bounds one advise search; zero fields inherit the
// server's configured moga defaults.
type AdviseSearchOptions struct {
	Population     int    `json:"population,omitempty"`
	Generations    int    `json:"generations,omitempty"`
	MaxEvaluations int    `json:"max_evaluations,omitempty"`
	Seed           uint64 `json:"seed,omitempty"`
}

// Hard ceilings on client-supplied search budgets: /v1/advise runs real
// schedule evaluations, so an unbounded request would be a CPU amplifier.
const (
	maxAdvisePopulation  = 256
	maxAdviseGenerations = 256
	maxAdviseEvaluations = 1 << 17
)

// AdviseResponse is the POST /v1/advise success body.
type AdviseResponse struct {
	Backend     string `json:"backend"`
	Heuristic   string `json:"heuristic"`
	RCSize      int    `json:"rc_size"`
	MaskedHosts int    `json:"masked_hosts"`
	FrontSize   int    `json:"front_size"`
	Evaluations int    `json:"evaluations"`
	Generations int    `json:"generations"`
	// Front is the knee-ranked Pareto front: Front[0] is the knee point a
	// backend=moga select would bind right now.
	Front []moga.Solution `json:"front"`
}

// decodeAdviseRequest parses a /v1/advise body: the envelope, the embedded
// DAG, then the search-budget bounds. It is a pure []byte → value function so
// the fuzz target can drive it without an HTTP server.
func decodeAdviseRequest(data []byte) (*AdviseRequest, *dag.DAG, error) {
	var req AdviseRequest
	if err := json.Unmarshal(data, &req); err != nil {
		return nil, nil, fmt.Errorf("malformed request JSON: %w", err)
	}
	if len(req.Dag) == 0 {
		return nil, nil, errors.New("request has no dag")
	}
	d, err := dag.Decode(bytes.NewReader(req.Dag))
	if err != nil {
		return nil, nil, fmt.Errorf("invalid dag: %w", err)
	}
	sr := req.Search
	switch {
	case sr.Population < 0 || sr.Population > maxAdvisePopulation:
		return nil, nil, fmt.Errorf("search.population %d outside [0, %d]", sr.Population, maxAdvisePopulation)
	case sr.Generations < 0 || sr.Generations > maxAdviseGenerations:
		return nil, nil, fmt.Errorf("search.generations %d outside [0, %d]", sr.Generations, maxAdviseGenerations)
	case sr.MaxEvaluations < 0 || sr.MaxEvaluations > maxAdviseEvaluations:
		return nil, nil, fmt.Errorf("search.max_evaluations %d outside [0, %d]", sr.MaxEvaluations, maxAdviseEvaluations)
	}
	return &req, d, nil
}

// handleAdvise is POST /v1/advise: read-only — no lease is taken, no state
// mutated beyond metrics.
func (s *Server) handleAdvise(w http.ResponseWriter, r *http.Request) {
	select {
	case s.sem <- struct{}{}:
		defer func() { <-s.sem }()
	case <-r.Context().Done():
		s.metrics.rejected.Add(1)
		writeError(w, http.StatusServiceUnavailable, "server saturated: %v", r.Context().Err())
		return
	}

	body, err := io.ReadAll(http.MaxBytesReader(w, r.Body, s.cfg.MaxBodyBytes))
	if err != nil {
		var tooBig *http.MaxBytesError
		if errors.As(err, &tooBig) {
			writeError(w, http.StatusRequestEntityTooLarge, "request body exceeds %d bytes", tooBig.Limit)
			return
		}
		writeError(w, http.StatusBadRequest, "read request: %v", err)
		return
	}
	_, decSpan := obs.StartSpan(r.Context(), "decode")
	req, d, err := decodeAdviseRequest(body)
	if err != nil {
		decSpan.EndErr(err)
		writeError(w, http.StatusBadRequest, "%v", err)
		return
	}
	if err := s.validateOptions(req.Options); err != nil {
		decSpan.EndErr(err)
		writeError(w, http.StatusBadRequest, "invalid options: %v", err)
		return
	}
	decSpan.End()

	p, _ := s.brk.Inventory()
	if p == nil {
		writeError(w, http.StatusPreconditionFailed, "no inventory registered (PUT /v1/platform first)")
		return
	}

	ctx, cancel := context.WithTimeout(r.Context(), s.cfg.Timeout)
	defer cancel()
	o := req.Options
	_, genSpan := obs.StartSpan(ctx, "generate")
	sp, err := s.cfg.Generator.Generate(d, spec.Options{
		Threshold:              o.Threshold,
		UtilityLambda:          o.UtilityLambda,
		ClockGHz:               o.ClockGHz,
		HeterogeneityTolerance: o.HeterogeneityTolerance,
		MinMemoryMB:            o.MinMemoryMB,
		SCRValue:               o.SCR,
		MixedParallel:          o.MixedParallel,
		Heuristic:              o.Heuristic,
	})
	genSpan.EndErr(err)
	if err != nil {
		writeError(w, http.StatusInternalServerError, "generate: %v", err)
		return
	}

	cfg := *s.cfg.Moga
	if req.Search.Population > 0 {
		cfg.PopSize = req.Search.Population
	}
	if req.Search.Generations > 0 {
		cfg.Generations = req.Search.Generations
	}
	if req.Search.MaxEvaluations > 0 {
		cfg.MaxEvaluations = req.Search.MaxEvaluations
	}
	if req.Search.Seed != 0 {
		cfg.Seed = req.Search.Seed
	}
	excluded := s.brk.SelectionMask()
	if req.IncludeLeased {
		excluded = nil
	}

	start := time.Now()
	_, searchSpan := obs.StartSpan(ctx, "advise")
	res, err := moga.Search(ctx, moga.Problem{
		Platform: p,
		Spec:     sp,
		Dag:      d,
		Excluded: excluded,
	}, cfg)
	if err == nil {
		searchSpan.SetDetail("front=%d evals=%d", len(res.Front), res.Evaluations)
	}
	searchSpan.EndErr(err)
	s.metrics.adviseLatency.Observe(time.Since(start))
	if err != nil {
		switch {
		case errors.Is(err, moga.ErrNoEligibleHosts):
			writeError(w, http.StatusConflict, "advise: %v (every eligible host is leased or excluded)", err)
		case errors.Is(err, context.DeadlineExceeded):
			writeError(w, http.StatusGatewayTimeout, "advise: %v", err)
		case errors.Is(err, context.Canceled):
			writeError(w, http.StatusServiceUnavailable, "advise: %v", err)
		default:
			writeError(w, http.StatusInternalServerError, "advise: %v", err)
		}
		return
	}
	writeJSON(w, http.StatusOK, AdviseResponse{
		Backend:     "moga",
		Heuristic:   sp.Heuristic,
		RCSize:      sp.RCSize,
		MaskedHosts: len(excluded),
		FrontSize:   len(res.Front),
		Evaluations: res.Evaluations,
		Generations: res.Generations,
		Front:       res.Front,
	})
}
