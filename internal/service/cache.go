package service

import (
	"container/list"
	"sync"
	"sync/atomic"
)

// responseCache is a bounded LRU over fully rendered response bodies. The
// value stored is the exact byte slice written to the first client, so a
// hit is byte-identical to the original response by construction (the
// cache-determinism contract in DESIGN.md §Serving). Entries are never
// mutated after Put; readers share the slice.
type responseCache struct {
	mu    sync.Mutex
	max   int
	ll    *list.List // front = most recently used
	items map[string]*list.Element

	evictions atomic.Uint64 // entries dropped by the capacity bound
}

type cacheEntry struct {
	key  string
	body []byte
}

func newResponseCache(max int) *responseCache {
	if max < 1 {
		max = 1
	}
	return &responseCache{
		max:   max,
		ll:    list.New(),
		items: make(map[string]*list.Element, max),
	}
}

// Get returns the cached body and refreshes its recency.
func (c *responseCache) Get(key string) ([]byte, bool) {
	c.mu.Lock()
	defer c.mu.Unlock()
	el, ok := c.items[key]
	if !ok {
		return nil, false
	}
	c.ll.MoveToFront(el)
	return el.Value.(*cacheEntry).body, true
}

// Put stores a body, evicting the least recently used entry at capacity.
func (c *responseCache) Put(key string, body []byte) {
	c.mu.Lock()
	defer c.mu.Unlock()
	if el, ok := c.items[key]; ok {
		c.ll.MoveToFront(el)
		el.Value.(*cacheEntry).body = body
		return
	}
	for c.ll.Len() >= c.max {
		oldest := c.ll.Back()
		c.ll.Remove(oldest)
		delete(c.items, oldest.Value.(*cacheEntry).key)
		c.evictions.Add(1)
	}
	c.items[key] = c.ll.PushFront(&cacheEntry{key: key, body: body})
}

// Evictions returns the cumulative number of capacity evictions.
func (c *responseCache) Evictions() uint64 { return c.evictions.Load() }

// Len returns the number of cached responses.
func (c *responseCache) Len() int {
	c.mu.Lock()
	defer c.mu.Unlock()
	return c.ll.Len()
}

// flightGroup deduplicates concurrent identical requests: the first caller
// for a key computes, later callers wait for the shared result. Unlike
// x/sync's singleflight (unavailable: stdlib only), results are handed out
// as shared immutable byte slices and the computation runs under the
// server's context, not the leader's, so a leader disconnecting cannot fail
// the followers.
type flightGroup struct {
	mu sync.Mutex
	m  map[string]*flightCall
}

type flightCall struct {
	done chan struct{} // closed when body/err are final
	body []byte
	err  error
}

func newFlightGroup() *flightGroup {
	return &flightGroup{m: make(map[string]*flightCall)}
}

// join returns the in-flight call for key, creating one if absent; leader
// reports whether the caller must run the computation and then finish().
func (g *flightGroup) join(key string) (call *flightCall, leader bool) {
	g.mu.Lock()
	defer g.mu.Unlock()
	if c, ok := g.m[key]; ok {
		return c, false
	}
	c := &flightCall{done: make(chan struct{})}
	g.m[key] = c
	return c, true
}

// finish publishes the leader's result and retires the key.
func (g *flightGroup) finish(key string, c *flightCall, body []byte, err error) {
	c.body, c.err = body, err
	g.mu.Lock()
	delete(g.m, key)
	g.mu.Unlock()
	close(c.done)
}
