package service

import (
	"context"
	"encoding/json"
	"fmt"
	"net/http"
	"strings"
	"testing"

	"rsgen/internal/broker"
	"rsgen/internal/reconcile"
)

// newReconcileServer wires a broker and a reconciler over it into a test
// server, the way rsgend does with -reconcile-interval > 0. The reconciler is
// not Start()ed: tests drive Cycle explicitly for determinism.
func newReconcileServer(t *testing.T) (*Server, *reconcile.Reconciler) {
	t.Helper()
	gen, err := testGenerator()
	if err != nil {
		t.Fatalf("training test generator: %v", err)
	}
	brk, err := broker.New(broker.Config{Generator: gen})
	if err != nil {
		t.Fatalf("broker.New: %v", err)
	}
	rec, err := reconcile.New(reconcile.Config{Broker: brk})
	if err != nil {
		t.Fatalf("reconcile.New: %v", err)
	}
	s := newTestServer(t, func(c *Config) {
		c.Broker = brk
		c.Reconciler = rec
	})
	return s, rec
}

func TestPlatformEventsValidation(t *testing.T) {
	s, _ := newReconcileServer(t)

	// Before any platform registration the event stream has nothing to
	// validate against.
	if w := do(s, http.MethodPost, "/v1/platform/events", `{"events": [{"type": "leave", "host": 0}]}`); w.Code != http.StatusPreconditionFailed {
		t.Fatalf("events without inventory = %d, want 412; body: %s", w.Code, w.Body.String())
	}
	registerPlatform(t, s, `{"generate": {"clusters": 4, "year": 2006, "seed": 3}}`)

	cases := []struct {
		name string
		body string
		want int
	}{
		{"bad json", `{nope`, http.StatusBadRequest},
		{"no events", `{"events": []}`, http.StatusBadRequest},
		{"unknown type", `{"events": [{"type": "explode"}]}`, http.StatusBadRequest},
		{"host out of range", `{"events": [{"type": "leave", "host": 100000}]}`, http.StatusBadRequest},
		{"cluster out of range", `{"events": [{"type": "cluster_leave", "cluster": 99}]}`, http.StatusBadRequest},
		{"ok", `{"events": [{"type": "leave", "host": 0}, {"type": "load", "host": 1, "load": 0.8}]}`, http.StatusOK},
	}
	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			w := do(s, http.MethodPost, "/v1/platform/events", tc.body)
			if w.Code != tc.want {
				t.Fatalf("status = %d, want %d; body: %s", w.Code, tc.want, w.Body.String())
			}
			if tc.want == http.StatusOK {
				var resp struct {
					Ingested int `json:"ingested"`
				}
				if err := json.Unmarshal(w.Body.Bytes(), &resp); err != nil || resp.Ingested != 2 {
					t.Fatalf("ingested = %d (err %v), want 2; body: %s", resp.Ingested, err, w.Body.String())
				}
			}
		})
	}
}

func TestPlatformEventsWithoutReconciler(t *testing.T) {
	s := newTestServer(t, nil)
	registerPlatform(t, s, `{"generate": {"clusters": 4, "year": 2006, "seed": 3}}`)
	w := do(s, http.MethodPost, "/v1/platform/events", `{"events": [{"type": "leave", "host": 0}]}`)
	if w.Code != http.StatusPreconditionFailed {
		t.Fatalf("events without reconciler = %d, want 412; body: %s", w.Code, w.Body.String())
	}
	if !strings.Contains(w.Body.String(), "reconcile-interval") {
		t.Errorf("412 body %q does not say how to enable the reconciler", w.Body.String())
	}
}

// TestSelectStatusLifecycle walks the full loop over HTTP: bind, watch the
// status endpoint, kill the session's clusters through the event stream, and
// observe the transparent rebind plus its release-time report.
func TestSelectStatusLifecycle(t *testing.T) {
	s, rec := newReconcileServer(t)
	registerPlatform(t, s, `{"generate": {"clusters": 24, "year": 2003, "seed": 7}}`)

	w := do(s, http.MethodPost, "/v1/select",
		selectBody(`{"clock_ghz": 2.0, "alternative_clocks": [1.5], "alternative_tolerance": 2}`, `"ttl_seconds": 300`))
	if w.Code != http.StatusOK {
		t.Fatalf("select = %d; body: %s", w.Code, w.Body.String())
	}
	var sel struct {
		LeaseID       string `json:"lease_id"`
		Hosts         []int  `json:"hosts"`
		FallbackDepth int    `json:"fallback_depth"`
	}
	if err := json.Unmarshal(w.Body.Bytes(), &sel); err != nil {
		t.Fatalf("decoding select response: %v", err)
	}
	if sel.FallbackDepth != 0 {
		t.Fatalf("setup: fallback depth %d, want 0 so the rebind has rungs left", sel.FallbackDepth)
	}
	origin := sel.LeaseID
	if origin == "" {
		t.Fatalf("select response has no lease_id: %s", w.Body.String())
	}

	w = do(s, http.MethodGet, "/v1/select/"+origin, "")
	if w.Code != http.StatusOK {
		t.Fatalf("status before churn = %d; body: %s", w.Code, w.Body.String())
	}
	var st reconcile.SessionStatus
	if err := json.Unmarshal(w.Body.Bytes(), &st); err != nil {
		t.Fatalf("decoding status: %v", err)
	}
	if st.Status != reconcile.StatusBound || st.CurrentLeaseID != origin {
		t.Fatalf("fresh session status %+v, want bound under its own ID", st)
	}

	// Kill every leased host via the public event stream, then run a cycle.
	events := make([]string, len(sel.Hosts))
	for i, h := range sel.Hosts {
		events[i] = fmt.Sprintf(`{"type": "leave", "host": %d}`, h)
	}
	w = do(s, http.MethodPost, "/v1/platform/events", `{"events": [`+strings.Join(events, ",")+`]}`)
	if w.Code != http.StatusOK {
		t.Fatalf("events = %d; body: %s", w.Code, w.Body.String())
	}
	if cs := rec.Cycle(context.Background()); cs.Rebinds != 1 {
		t.Fatalf("cycle stats %+v, want 1 rebind", cs)
	}

	w = do(s, http.MethodGet, "/v1/select/"+origin, "")
	if w.Code != http.StatusOK {
		t.Fatalf("status after churn = %d; body: %s", w.Code, w.Body.String())
	}
	if err := json.Unmarshal(w.Body.Bytes(), &st); err != nil {
		t.Fatalf("decoding status: %v", err)
	}
	if st.Status != reconcile.StatusRebound || st.CurrentLeaseID == origin || len(st.Rebinds) != 1 {
		t.Fatalf("session after churn %+v, want a rebound session with history", st)
	}
	// The replacement lease ID resolves to the same session.
	if w := do(s, http.MethodGet, "/v1/select/"+st.CurrentLeaseID, ""); w.Code != http.StatusOK {
		t.Errorf("status by current lease ID = %d; body: %s", w.Code, w.Body.String())
	}

	// Release through the origin handle reports the rebind to the client.
	w = do(s, http.MethodPost, "/v1/release", fmt.Sprintf(`{"lease_id": %q}`, origin))
	if w.Code != http.StatusOK {
		t.Fatalf("release = %d; body: %s", w.Code, w.Body.String())
	}
	var rel struct {
		Released bool   `json:"released"`
		LeaseID  string `json:"lease_id"`
		Rebound  bool   `json:"rebound"`
		Rebinds  int    `json:"rebinds"`
	}
	if err := json.Unmarshal(w.Body.Bytes(), &rel); err != nil {
		t.Fatalf("decoding release response: %v", err)
	}
	if !rel.Released || !rel.Rebound || rel.Rebinds != 1 {
		t.Fatalf("release response %+v, want released+rebound", rel)
	}
	// Releasing again is 404: the session is already terminal.
	if w := do(s, http.MethodPost, "/v1/release", fmt.Sprintf(`{"lease_id": %q}`, origin)); w.Code != http.StatusNotFound {
		t.Errorf("double release = %d, want 404; body: %s", w.Code, w.Body.String())
	}
}

func TestSelectStatusFallsBackToBrokerView(t *testing.T) {
	// Without a reconciler the status endpoint still serves the broker's
	// view — the shape untracked recovered leases get after a restart.
	s := newTestServer(t, nil)
	registerPlatform(t, s, `{"generate": {"clusters": 24, "year": 2003, "seed": 7}}`)
	w := do(s, http.MethodPost, "/v1/select", selectBody(`{"clock_ghz": 2.0}`, `"ttl_seconds": 300`))
	if w.Code != http.StatusOK {
		t.Fatalf("select = %d; body: %s", w.Code, w.Body.String())
	}
	var sel struct {
		LeaseID string `json:"lease_id"`
	}
	if err := json.Unmarshal(w.Body.Bytes(), &sel); err != nil || sel.LeaseID == "" {
		t.Fatalf("decoding select response (err %v): %s", err, w.Body.String())
	}
	w = do(s, http.MethodGet, "/v1/select/"+sel.LeaseID, "")
	if w.Code != http.StatusOK {
		t.Fatalf("broker-view status = %d; body: %s", w.Code, w.Body.String())
	}
	var st reconcile.SessionStatus
	if err := json.Unmarshal(w.Body.Bytes(), &st); err != nil {
		t.Fatalf("decoding status: %v", err)
	}
	if st.Status != reconcile.StatusBound || st.CurrentLeaseID != sel.LeaseID || len(st.Hosts) == 0 {
		t.Fatalf("broker-view status %+v", st)
	}
	if w := do(s, http.MethodGet, "/v1/select/lease-nope", ""); w.Code != http.StatusNotFound {
		t.Errorf("unknown lease status = %d, want 404", w.Code)
	}
}

func TestHealthzReportsLeasesAndReconcile(t *testing.T) {
	s, _ := newReconcileServer(t)
	registerPlatform(t, s, `{"generate": {"clusters": 24, "year": 2003, "seed": 7}}`)
	w := do(s, http.MethodPost, "/v1/select", selectBody(`{"clock_ghz": 2.0}`, `"ttl_seconds": 300`))
	if w.Code != http.StatusOK {
		t.Fatalf("select = %d; body: %s", w.Code, w.Body.String())
	}

	w = do(s, http.MethodGet, "/healthz", "")
	if w.Code != http.StatusOK {
		t.Fatalf("healthz = %d; body: %s", w.Code, w.Body.String())
	}
	var hz struct {
		Leases *struct {
			ActiveLeases int `json:"active_leases"`
			LeasedHosts  int `json:"leased_hosts"`
		} `json:"leases"`
		Reconcile *struct {
			ActiveExclusions int `json:"active_exclusions"`
			TrackedSessions  int `json:"tracked_sessions"`
		} `json:"reconcile"`
	}
	if err := json.Unmarshal(w.Body.Bytes(), &hz); err != nil {
		t.Fatalf("decoding healthz: %v", err)
	}
	if hz.Leases == nil || hz.Leases.ActiveLeases != 1 || hz.Leases.LeasedHosts == 0 {
		t.Errorf("healthz leases %+v, want one active lease with hosts", hz.Leases)
	}
	if hz.Reconcile == nil || hz.Reconcile.TrackedSessions != 1 {
		t.Errorf("healthz reconcile %+v, want one tracked session", hz.Reconcile)
	}

	// Without a reconciler the block is absent but occupancy still reports.
	s2 := newTestServer(t, nil)
	w = do(s2, http.MethodGet, "/healthz", "")
	body := w.Body.String()
	if !strings.Contains(body, `"leases"`) || strings.Contains(body, `"reconcile"`) {
		t.Errorf("plain healthz %q, want leases without reconcile", body)
	}
}

func TestReconcileMetricsGatedOnConfig(t *testing.T) {
	s, rec := newReconcileServer(t)
	registerPlatform(t, s, `{"generate": {"clusters": 4, "year": 2006, "seed": 3}}`)
	rec.Cycle(context.Background())
	w := do(s, http.MethodGet, "/metrics", "")
	if w.Code != http.StatusOK {
		t.Fatalf("metrics = %d", w.Code)
	}
	for _, series := range []string{
		"rsgend_reconcile_cycles_total 1",
		"rsgend_reconcile_tracked_sessions 0",
		"rsgend_reconcile_active_exclusions 0",
	} {
		if !strings.Contains(w.Body.String(), series) {
			t.Errorf("metrics missing %q", series)
		}
	}
	// TestMetricsGoldenExposition already pins the absence of the
	// rsgend_reconcile_* families on a server without a reconciler.
}
