package service

import (
	"net/http"
	"sync"
	"testing"
	"time"
)

// TestFlightLeaderCancellationFallsBack parks a leader until its compute
// deadline has passed (the deadline is the server-side form of mid-flight
// cancellation), lets a follower join while the leader is in flight, and
// asserts the follower recovers by evaluating independently instead of
// inheriting the leader's failure or deadlocking. Run under -race via the
// race target.
func TestFlightLeaderCancellationFallsBack(t *testing.T) {
	s := newTestServer(t, func(c *Config) { c.Timeout = 30 * time.Millisecond })
	leaderIn := make(chan struct{})
	var hookOnce sync.Once
	s.computeHook = func() {
		hookOnce.Do(func() {
			close(leaderIn)
			// Outlive the 30ms compute deadline; the post-hook ctx.Err()
			// check then fails the leader with DeadlineExceeded.
			time.Sleep(120 * time.Millisecond)
		})
	}

	leaderDone := make(chan int, 1)
	go func() {
		w := post(s, specBody(""))
		leaderDone <- w.Code
	}()
	<-leaderIn // leader holds the flight entry and is now doomed

	// Identical request joins as a follower, waits out the leader's
	// failure, and must fall back to its own evaluation (fresh deadline).
	w := post(s, specBody(""))
	if w.Code != http.StatusOK {
		t.Fatalf("follower after leader cancellation: %d: %s", w.Code, w.Body.String())
	}
	if code := <-leaderDone; code != http.StatusGatewayTimeout {
		t.Errorf("leader status = %d, want 504", code)
	}
	if got := s.metrics.flightFallbacks.Load(); got != 1 {
		t.Errorf("flight fallbacks = %d, want 1", got)
	}

	// The fallback cached its bytes: a replay is a plain hit.
	w2 := post(s, specBody(""))
	if w2.Code != http.StatusOK || w2.Header().Get("X-Cache") != "hit" {
		t.Errorf("replay after fallback: %d, X-Cache %q", w2.Code, w2.Header().Get("X-Cache"))
	}
	if w2.Body.String() != w.Body.String() {
		t.Error("replayed bytes differ from the fallback's")
	}
}

// TestFlightLateFollower pins the group's retire-on-finish semantics: a
// caller arriving after the leader finished never observes the dead call —
// it starts a new flight (or, at the HTTP layer, hits the cache).
func TestFlightLateFollower(t *testing.T) {
	g := newFlightGroup()
	c1, leader := g.join("k")
	if !leader {
		t.Fatal("first join not leader")
	}
	g.finish("k", c1, []byte("body"), nil)
	select {
	case <-c1.done:
	default:
		t.Fatal("finished call's done channel not closed")
	}
	c2, leader := g.join("k")
	if !leader {
		t.Fatal("join after finish must lead a new flight, not follow the retired one")
	}
	if c2 == c1 {
		t.Fatal("join after finish returned the retired call")
	}
	g.finish("k", c2, nil, nil)
}

// TestFlightLateFollowerAfterFailedLeader: when the leader failed (so
// nothing was cached), a later identical request must recompute fresh and
// succeed rather than replaying the failure.
func TestFlightLateFollowerAfterFailedLeader(t *testing.T) {
	s := newTestServer(t, func(c *Config) { c.Timeout = 20 * time.Millisecond })
	var hookOnce sync.Once
	s.computeHook = func() {
		hookOnce.Do(func() { time.Sleep(80 * time.Millisecond) })
	}
	if w := post(s, specBody("")); w.Code != http.StatusGatewayTimeout {
		t.Fatalf("doomed leader: %d, want 504", w.Code)
	}
	// Arrives strictly after the failed flight retired: fresh leader, fast
	// hook, success.
	w := post(s, specBody(""))
	if w.Code != http.StatusOK {
		t.Fatalf("request after failed flight: %d: %s", w.Code, w.Body.String())
	}
	if got := s.metrics.flightFallbacks.Load(); got != 0 {
		t.Errorf("flight fallbacks = %d, want 0 (nobody was waiting)", got)
	}
}
