package service

import (
	"bytes"
	"encoding/json"
	"errors"
	"fmt"
	"net/http"

	"rsgen/internal/dag"
	"rsgen/internal/eval"
	"rsgen/internal/obs"
	"rsgen/internal/spec"
)

// BatchRequest is the POST /v1/spec/batch body: many specification requests
// answered in one round trip under a single pinned snapshot of the model
// registry and platform inventory. Members that decode and validate are
// always answered; a bad member yields a per-member 400 result, not a batch
// failure.
type BatchRequest struct {
	// Requests are the members, answered positionally in Results.
	Requests []BatchMember `json:"requests"`
	// Options, when set, is the default option block for members that do
	// not carry their own.
	Options *SpecOptions `json:"options,omitempty"`
}

// BatchMember is one DAG plus (optionally) its own option overrides.
type BatchMember struct {
	Dag json.RawMessage `json:"dag"`
	// Options replaces (not merges with) the batch default when set.
	Options *SpecOptions `json:"options,omitempty"`
}

// BatchSnapshot records what every member of the batch was evaluated
// against. It is captured once, before any member runs: a concurrent model
// reload or platform event lands entirely before or entirely after this
// batch's snapshot, never between two members.
type BatchSnapshot struct {
	// ArtifactVersion is the trained-model artifact format version.
	ArtifactVersion int `json:"artifact_version"`
	// SizeThresholds is the number of trained size-model thresholds.
	SizeThresholds int `json:"size_thresholds"`
	// HeuristicModel reports whether the heuristic predictor is loaded.
	HeuristicModel bool `json:"heuristic_model"`
	// InventoryGeneration is the broker's platform-inventory epoch at batch
	// start (0 before any inventory is registered).
	InventoryGeneration uint64 `json:"inventory_generation"`
	// EvalWorkers is the worker count the members fanned out over.
	EvalWorkers int `json:"eval_workers"`
}

// BatchResult is one member's outcome. Status is the HTTP status the same
// request would have received on POST /v1/spec; Spec is present exactly when
// Status is 200 and holds the same JSON object (batch framing aside).
type BatchResult struct {
	Index  int             `json:"index"`
	Status int             `json:"status"`
	Source string          `json:"source,omitempty"`
	Spec   json.RawMessage `json:"spec,omitempty"`
	Error  string          `json:"error,omitempty"`
}

// BatchResponse is the POST /v1/spec/batch response body. The counters
// partition Members: Computed (led or independently recomputed an
// evaluation) + CacheHits (byte-exact or shape cache) + Coalesced (waited on
// an in-flight computation, byte-exact or shape) + Errors.
type BatchResponse struct {
	Snapshot  BatchSnapshot `json:"snapshot"`
	Members   int           `json:"members"`
	Computed  int           `json:"computed"`
	CacheHits int           `json:"cache_hits"`
	Coalesced int           `json:"coalesced"`
	Errors    int           `json:"errors"`
	Results   []BatchResult `json:"results"`
}

// handleSpecBatch is POST /v1/spec/batch: decode and validate every member
// up front, pin the snapshot, then fan the members over the evaluation
// worker budget through the same resolveSpec path as single requests — so a
// batch gets the full benefit of the response cache, shape coalescing, and
// in-flight dedup, within itself and against concurrent traffic.
func (s *Server) handleSpecBatch(w http.ResponseWriter, r *http.Request) {
	// One concurrency slot covers the whole batch: the batch is the unit of
	// admission, and its members are bounded by the eval worker budget
	// below, not by the handler semaphore.
	select {
	case s.sem <- struct{}{}:
		defer func() { <-s.sem }()
	case <-r.Context().Done():
		s.metrics.rejected.Add(1)
		writeError(w, http.StatusServiceUnavailable, "server saturated: %v", r.Context().Err())
		return
	}

	r.Body = http.MaxBytesReader(w, r.Body, s.cfg.MaxBatchBytes)
	_, decSpan := obs.StartSpan(r.Context(), "decode")
	var req BatchRequest
	if err := json.NewDecoder(r.Body).Decode(&req); err != nil {
		decSpan.EndErr(err)
		var tooBig *http.MaxBytesError
		if errors.As(err, &tooBig) {
			writeError(w, http.StatusRequestEntityTooLarge, "request body exceeds %d bytes", tooBig.Limit)
			return
		}
		writeError(w, http.StatusBadRequest, "malformed request JSON: %v", err)
		return
	}
	if len(req.Requests) == 0 {
		decSpan.EndErr(errors.New("batch has no requests"))
		writeError(w, http.StatusBadRequest, "batch has no requests")
		return
	}
	if n := len(req.Requests); n > s.cfg.MaxBatchMembers {
		decSpan.EndErr(fmt.Errorf("batch too large: %d members", n))
		writeError(w, http.StatusRequestEntityTooLarge, "batch has %d members, limit is %d", n, s.cfg.MaxBatchMembers)
		return
	}

	// Decode and validate every member before any evaluation starts, so
	// malformed members surface as per-member 400s regardless of worker
	// scheduling order. Byte-identical members (same raw dag bytes, same
	// effective options) are grouped before the dag is even decoded: one
	// leader per group decodes and resolves, and its followers copy the
	// leader's result afterwards. Decoding dominates the per-member cost of
	// a cache-friendly batch, so duplicate-heavy workloads skip it entirely.
	type member struct {
		d    *dag.DAG
		opts SpecOptions
	}
	results := make([]BatchResult, len(req.Requests))
	members := make([]member, len(req.Requests))
	todo := make([]int, 0, len(req.Requests))
	groups := make(map[string]int, len(req.Requests))
	followers := make(map[int][]int)
	for i, m := range req.Requests {
		results[i].Index = i
		if len(m.Dag) == 0 {
			results[i].Status = http.StatusBadRequest
			results[i].Error = "member has no dag"
			continue
		}
		opts := SpecOptions{}
		if m.Options != nil {
			opts = *m.Options
		} else if req.Options != nil {
			opts = *req.Options
		}
		if err := s.validateOptions(opts); err != nil {
			results[i].Status = http.StatusBadRequest
			results[i].Error = fmt.Sprintf("invalid options: %v", err)
			continue
		}
		rawKey := optsKey(opts) + "\x00" + string(m.Dag)
		if leader, ok := groups[rawKey]; ok {
			followers[leader] = append(followers[leader], i)
			continue
		}
		groups[rawKey] = i
		d, err := dag.Decode(bytes.NewReader(m.Dag))
		if err != nil {
			results[i].Status = http.StatusBadRequest
			results[i].Error = fmt.Sprintf("invalid dag: %v", err)
			continue
		}
		members[i] = member{d: d, opts: opts}
		todo = append(todo, i)
	}
	decSpan.SetDetail("members=%d valid=%d groups=%d", len(req.Requests), len(todo), len(groups))
	decSpan.End()

	g := s.cfg.Generator
	snapshot := BatchSnapshot{
		ArtifactVersion:     spec.ArtifactFormatVersion,
		SizeThresholds:      len(g.Size.Models),
		HeuristicModel:      g.Heur != nil,
		InventoryGeneration: s.brk.Generation(),
		EvalWorkers:         s.effectiveWorkers(),
	}
	s.metrics.batchRequests.Inc()
	s.metrics.batchMembers.Add(uint64(len(req.Requests)))

	// Members run without per-member trace spans — a full batch would
	// swamp the span ring — while keeping the request's cancellation; the
	// batch's own decode/members spans still tell the timing story.
	mctx := obs.WithTrace(r.Context(), nil)
	_, runSpan := obs.StartSpan(r.Context(), "members")
	eval.Fan(len(todo), s.effectiveWorkers(), func(k int) {
		i := todo[k]
		body, source, err := s.resolveSpec(mctx, members[i].d, members[i].opts)
		if err != nil {
			status := specErrStatus(err)
			if errors.Is(err, errAbandoned) {
				status = http.StatusServiceUnavailable
			}
			results[i].Status = status
			results[i].Error = err.Error()
			return
		}
		results[i].Status = http.StatusOK
		results[i].Source = source
		// The single-request body is compact JSON plus a trailing newline;
		// strip the newline so the member embeds as a clean JSON value.
		results[i].Spec = json.RawMessage(bytes.TrimSuffix(body, []byte("\n")))
	})
	runSpan.SetDetail("members=%d", len(todo))
	runSpan.End()

	// Fan the leaders' outcomes out to their byte-identical followers. A
	// successful follower reports source "shared" — it merged with an
	// identical request rather than being served by the cache — and failed
	// leaders (including decode errors) propagate their result verbatim.
	for leader, dup := range followers {
		for _, i := range dup {
			results[i] = results[leader]
			results[i].Index = i
			if results[i].Status == http.StatusOK {
				results[i].Source = srcShared
				s.metrics.dedupShared.Inc()
			}
		}
	}

	resp := BatchResponse{Snapshot: snapshot, Members: len(results), Results: results}
	for i := range results {
		switch results[i].Source {
		case srcComputed, srcFallback:
			resp.Computed++
		case srcCacheHit, srcShapeHit:
			resp.CacheHits++
		case srcShared, srcCoalesced:
			resp.Coalesced++
		default:
			resp.Errors++
		}
	}
	writeBatchResponse(w, &resp)
}

// writeBatchResponse renders the batch body by hand instead of handing the
// whole BatchResponse to encoding/json: the embedded member specs are
// already compact JSON straight from the response cache, and json.Marshal
// would re-scan and re-compact every one of them (measurably the largest
// single cost of serving a cache-hot batch). Only the small envelope fields
// go through the encoder.
func writeBatchResponse(w http.ResponseWriter, resp *BatchResponse) {
	size := 256
	for i := range resp.Results {
		size += len(resp.Results[i].Spec) + len(resp.Results[i].Error) + 64
	}
	buf := bytes.NewBuffer(make([]byte, 0, size))
	buf.WriteString(`{"snapshot":`)
	snap, err := json.Marshal(resp.Snapshot)
	if err != nil {
		writeError(w, http.StatusInternalServerError, "encode snapshot: %v", err)
		return
	}
	buf.Write(snap)
	fmt.Fprintf(buf, `,"members":%d,"computed":%d,"cache_hits":%d,"coalesced":%d,"errors":%d,"results":[`,
		resp.Members, resp.Computed, resp.CacheHits, resp.Coalesced, resp.Errors)
	for i := range resp.Results {
		r := &resp.Results[i]
		if i > 0 {
			buf.WriteByte(',')
		}
		fmt.Fprintf(buf, `{"index":%d,"status":%d`, r.Index, r.Status)
		if r.Source != "" {
			// Sources are fixed identifiers; no escaping needed.
			fmt.Fprintf(buf, `,"source":%q`, r.Source)
		}
		if len(r.Spec) > 0 {
			buf.WriteString(`,"spec":`)
			buf.Write(r.Spec)
		}
		if r.Error != "" {
			msg, err := json.Marshal(r.Error)
			if err != nil {
				writeError(w, http.StatusInternalServerError, "encode error: %v", err)
				return
			}
			buf.WriteString(`,"error":`)
			buf.Write(msg)
		}
		buf.WriteByte('}')
	}
	buf.WriteString("]}\n")
	w.Header().Set("Content-Type", "application/json")
	w.WriteHeader(http.StatusOK)
	_, _ = w.Write(buf.Bytes())
}
