// Reconciler endpoints: the event stream feeding the closed loop and the
// session-status view over it.
//
//   - POST /v1/platform/events — ingest host churn / load / clock events
//   - GET  /v1/select/{id}     — session status by origin or current lease
//
// Both answer 412 when the server runs without a reconciler.
package service

import (
	"encoding/json"
	"net/http"
	"time"

	"rsgen/internal/reconcile"
)

// EventsRequest is the POST /v1/platform/events body.
type EventsRequest struct {
	Events []reconcile.Event `json:"events"`
}

// handlePlatformEvents is POST /v1/platform/events: validate the batch
// against the registered platform and queue it for the next cycle.
func (s *Server) handlePlatformEvents(w http.ResponseWriter, r *http.Request) {
	if s.rec == nil {
		writeError(w, http.StatusPreconditionFailed, "reconciler disabled (start rsgend with -reconcile-interval > 0)")
		return
	}
	p, _ := s.brk.Inventory()
	if p == nil {
		writeError(w, http.StatusPreconditionFailed, "no inventory registered (PUT /v1/platform first)")
		return
	}
	r.Body = http.MaxBytesReader(w, r.Body, s.cfg.MaxBodyBytes)
	var req EventsRequest
	if err := json.NewDecoder(r.Body).Decode(&req); err != nil {
		writeError(w, http.StatusBadRequest, "malformed request JSON: %v", err)
		return
	}
	if len(req.Events) == 0 {
		writeError(w, http.StatusBadRequest, "request has no events")
		return
	}
	for i, e := range req.Events {
		if err := e.Validate(p); err != nil {
			writeError(w, http.StatusBadRequest, "event %d: %v", i, err)
			return
		}
	}
	writeJSON(w, http.StatusOK, map[string]any{"ingested": s.rec.Ingest(req.Events)})
}

// handleSelectStatus is GET /v1/select/{id}: the reconciler's view of a
// session. IDs the reconciler never tracked (e.g. leases recovered from the
// durable store after a restart — the ladder needed to rebind them was not
// persisted) fall back to a minimal broker-only view.
func (s *Server) handleSelectStatus(w http.ResponseWriter, r *http.Request) {
	id := r.PathValue("id")
	if s.rec != nil {
		if st, ok := s.rec.Status(id); ok {
			writeJSON(w, http.StatusOK, st)
			return
		}
	}
	if l, ok := s.brk.Lease(id); ok {
		st := reconcile.SessionStatus{
			LeaseID:          l.ID,
			CurrentLeaseID:   l.ID,
			Status:           reconcile.StatusBound,
			Rung:             l.Rung,
			Backend:          l.Backend,
			Hosts:            l.Hosts,
			ExpiresInSeconds: time.Until(l.Expires).Seconds(),
			BoundAt:          l.BoundAt,
		}
		if !l.BoundAt.IsZero() {
			st.AgeSeconds = time.Since(l.BoundAt).Seconds()
		}
		writeJSON(w, http.StatusOK, st)
		return
	}
	writeError(w, http.StatusNotFound, "unknown or expired lease %q", id)
}
