package service

import (
	"encoding/json"
	"fmt"
	"net/http"
	"strings"
	"testing"

	"rsgen/internal/obs"
)

// newObsServer is newTestServer with a flight recorder wired in, which
// mounts GET /v1/observations and the accuracy families.
func newObsServer(t *testing.T) *Server {
	t.Helper()
	return newTestServer(t, func(c *Config) {
		c.Recorder = obs.NewFlightRecorder(0, nil, nil)
	})
}

// bindAndRelease walks one full lease lifecycle over HTTP and returns the
// select response; observedSeconds < 0 skips the release.
func bindAndRelease(t *testing.T, s *Server, observedSeconds float64) SelectResponse {
	t.Helper()
	w := do(s, http.MethodPost, "/v1/select",
		selectBody(`{"clock_ghz": 2.0}`, `"ttl_seconds": 300`))
	if w.Code != http.StatusOK {
		t.Fatalf("POST /v1/select = %d: %s", w.Code, w.Body.String())
	}
	var resp SelectResponse
	if err := json.Unmarshal(w.Body.Bytes(), &resp); err != nil {
		t.Fatalf("decoding select response: %v", err)
	}
	if observedSeconds >= 0 {
		w = do(s, http.MethodPost, "/v1/release",
			fmt.Sprintf(`{"lease_id": %q, "observed_seconds": %v}`, resp.LeaseID, observedSeconds))
		if w.Code != http.StatusOK {
			t.Fatalf("POST /v1/release = %d: %s", w.Code, w.Body.String())
		}
	}
	return resp
}

func TestObservationsEndpoint(t *testing.T) {
	s := newObsServer(t)
	registerPlatform(t, s, `{"generate": {"clusters": 24, "year": 2003, "seed": 7}}`)

	sel := bindAndRelease(t, s, 42)
	if sel.PredictedTurnAroundSeconds <= 0 {
		t.Errorf("select response predicted_turn_around_seconds = %v, want > 0",
			sel.PredictedTurnAroundSeconds)
	}
	if sel.BoundAt.IsZero() {
		t.Error("select response has no bound_at")
	}

	w := do(s, http.MethodGet, "/v1/observations", "")
	if w.Code != http.StatusOK {
		t.Fatalf("GET /v1/observations = %d: %s", w.Code, w.Body.String())
	}
	var page ObservationsResponse
	if err := json.Unmarshal(w.Body.Bytes(), &page); err != nil {
		t.Fatalf("decoding observations: %v", err)
	}
	if page.Total != 1 || page.Count != 1 || len(page.Observations) != 1 {
		t.Fatalf("page %+v, want exactly the one released lease", page)
	}
	o := page.Observations[0]
	if o.LeaseID != sel.LeaseID || o.EndReason != obs.EndReleased {
		t.Errorf("observation %+v does not match the released lease %s", o, sel.LeaseID)
	}
	if o.PredictedSeconds != sel.PredictedTurnAroundSeconds || o.ObservedSeconds != 42 {
		t.Errorf("observation predicted/observed = %v/%v, want %v/42",
			o.PredictedSeconds, o.ObservedSeconds, sel.PredictedTurnAroundSeconds)
	}
	if len(o.TraceID) != 32 {
		t.Errorf("observation trace_id %q, want the releasing request's 32-hex ID", o.TraceID)
	}

	// Filters: matching backend keeps the row, another drops it; the
	// fingerprint filter round-trips.
	for _, tc := range []struct {
		query string
		want  int
	}{
		{"?backend=" + o.Backend, 1},
		{"?backend=nope", 0},
		{"?fingerprint=" + o.Fingerprint, 1},
		{"?fingerprint=ffffffffffffffff", 0},
		{"?since=2000-01-01T00:00:00Z", 1},
		{"?since=2999-01-01T00:00:00Z", 0},
	} {
		w := do(s, http.MethodGet, "/v1/observations"+tc.query, "")
		if w.Code != http.StatusOK {
			t.Fatalf("GET /v1/observations%s = %d", tc.query, w.Code)
		}
		var p ObservationsResponse
		if err := json.Unmarshal(w.Body.Bytes(), &p); err != nil {
			t.Fatal(err)
		}
		if p.Count != tc.want {
			t.Errorf("%s: count = %d, want %d", tc.query, p.Count, tc.want)
		}
		if p.Observations == nil {
			t.Errorf("%s: observations is null, want [] even when empty", tc.query)
		}
	}

	// Malformed parameters are 400s, not silent defaults.
	for _, q := range []string{"?since=yesterday", "?limit=0", "?limit=x", "?offset=-1"} {
		if w := do(s, http.MethodGet, "/v1/observations"+q, ""); w.Code != http.StatusBadRequest {
			t.Errorf("GET /v1/observations%s = %d, want 400", q, w.Code)
		}
	}
}

func TestObservationsPagination(t *testing.T) {
	s := newObsServer(t)
	registerPlatform(t, s, `{"generate": {"clusters": 24, "year": 2003, "seed": 7}}`)
	var ids []string
	for i := 0; i < 3; i++ {
		ids = append(ids, bindAndRelease(t, s, float64(10+i)).LeaseID)
	}
	w := do(s, http.MethodGet, "/v1/observations?limit=2&offset=1", "")
	if w.Code != http.StatusOK {
		t.Fatalf("GET = %d: %s", w.Code, w.Body.String())
	}
	var p ObservationsResponse
	if err := json.Unmarshal(w.Body.Bytes(), &p); err != nil {
		t.Fatal(err)
	}
	if p.Matched != 3 || p.Offset != 1 || p.Count != 2 {
		t.Fatalf("page %+v, want matched=3 offset=1 count=2", p)
	}
	// Newest first: offset 1 of [ids[2], ids[1], ids[0]] is ids[1], ids[0].
	if p.Observations[0].LeaseID != ids[1] || p.Observations[1].LeaseID != ids[0] {
		t.Errorf("page rows %s, %s; want %s, %s",
			p.Observations[0].LeaseID, p.Observations[1].LeaseID, ids[1], ids[0])
	}
}

func TestObservationsRouteAbsentWithoutRecorder(t *testing.T) {
	s := newTestServer(t, nil)
	if w := do(s, http.MethodGet, "/v1/observations", ""); w.Code != http.StatusNotFound {
		t.Errorf("GET /v1/observations without a recorder = %d, want 404", w.Code)
	}
}

func TestHealthzAccuracyAndLeaseAge(t *testing.T) {
	s := newObsServer(t)
	registerPlatform(t, s, `{"generate": {"clusters": 24, "year": 2003, "seed": 7}}`)
	bindAndRelease(t, s, 42)         // scored release
	live := bindAndRelease(t, s, -1) // live lease for the occupancy block

	w := do(s, http.MethodGet, "/healthz", "")
	if w.Code != http.StatusOK {
		t.Fatalf("GET /healthz = %d", w.Code)
	}
	var body struct {
		Leases struct {
			Active                int     `json:"active_leases"`
			OldestBoundAt         string  `json:"oldest_bound_at"`
			OldestLeaseAgeSeconds float64 `json:"oldest_lease_age_seconds"`
		} `json:"leases"`
		Accuracy *obs.AccuracySnapshot `json:"accuracy"`
	}
	if err := json.Unmarshal(w.Body.Bytes(), &body); err != nil {
		t.Fatalf("decoding healthz: %v", err)
	}
	if body.Leases.Active != 1 || body.Leases.OldestBoundAt == "" {
		t.Errorf("healthz leases block %+v, want 1 active with oldest_bound_at", body.Leases)
	}
	if body.Leases.OldestLeaseAgeSeconds < 0 {
		t.Errorf("oldest_lease_age_seconds = %v, want >= 0", body.Leases.OldestLeaseAgeSeconds)
	}
	if body.Accuracy == nil {
		t.Fatal("healthz has no accuracy block")
	}
	if body.Accuracy.Observations != 1 || body.Accuracy.Scored != 1 {
		t.Errorf("accuracy block %+v, want 1 observation, 1 scored", body.Accuracy)
	}

	// The accuracy families are exposed on /metrics.
	m := getMetrics(t, s)
	for _, want := range []string{
		"rsgend_accuracy_observations_total",
		"rsgend_accuracy_scored_total 1",
		"rsgend_model_drift 0",
	} {
		if !strings.Contains(m, want) {
			t.Errorf("/metrics missing %q", want)
		}
	}

	// GET /v1/select/{id} on the live lease reports when it was bound and
	// how old it is.
	w = do(s, http.MethodGet, "/v1/select/"+live.LeaseID, "")
	if w.Code != http.StatusOK {
		t.Fatalf("GET /v1/select/%s = %d", live.LeaseID, w.Code)
	}
	var st struct {
		BoundAt    string  `json:"bound_at"`
		AgeSeconds float64 `json:"age_seconds"`
	}
	if err := json.Unmarshal(w.Body.Bytes(), &st); err != nil {
		t.Fatal(err)
	}
	if st.BoundAt == "" || st.AgeSeconds < 0 {
		t.Errorf("session status bound_at=%q age_seconds=%v, want a bind time and age", st.BoundAt, st.AgeSeconds)
	}
}
