package xrand

import (
	"math"
	"testing"
	"testing/quick"
)

func TestDeterminism(t *testing.T) {
	a, b := New(12345), New(12345)
	for i := 0; i < 100; i++ {
		if a.Uint64() != b.Uint64() {
			t.Fatalf("same-seed streams diverged at step %d", i)
		}
	}
	c := New(12346)
	diverged := false
	a2 := New(12345)
	for i := 0; i < 10; i++ {
		if a2.Uint64() != c.Uint64() {
			diverged = true
			break
		}
	}
	if !diverged {
		t.Fatal("different seeds produced identical streams")
	}
}

func TestNewFromLabelIndependence(t *testing.T) {
	a := NewFrom(1, 0, 0)
	b := NewFrom(1, 0, 1)
	if a.Uint64() == b.Uint64() && a.Uint64() == b.Uint64() {
		t.Fatal("adjacent labels produced correlated streams")
	}
	// Same path ⇒ same stream.
	c, d := NewFrom(9, 4, 2), NewFrom(9, 4, 2)
	for i := 0; i < 16; i++ {
		if c.Uint64() != d.Uint64() {
			t.Fatal("identical label paths diverged")
		}
	}
}

func TestFloat64Range(t *testing.T) {
	r := New(7)
	for i := 0; i < 10000; i++ {
		f := r.Float64()
		if f < 0 || f >= 1 {
			t.Fatalf("Float64 out of [0,1): %v", f)
		}
	}
}

func TestUniformMean(t *testing.T) {
	r := New(11)
	sum := 0.0
	const n = 50000
	for i := 0; i < n; i++ {
		sum += r.Uniform(10, 20)
	}
	if m := sum / n; math.Abs(m-15) > 0.1 {
		t.Errorf("Uniform(10,20) mean = %v, want ≈15", m)
	}
}

func TestExpMean(t *testing.T) {
	r := New(13)
	sum := 0.0
	const n = 50000
	for i := 0; i < n; i++ {
		sum += r.Exp(4)
	}
	if m := sum / n; math.Abs(m-4) > 0.15 {
		t.Errorf("Exp(4) mean = %v, want ≈4", m)
	}
}

func TestNormMoments(t *testing.T) {
	r := New(17)
	const n = 50000
	var sum, sq float64
	for i := 0; i < n; i++ {
		v := r.Norm(5, 2)
		sum += v
		sq += v * v
	}
	mean := sum / n
	sd := math.Sqrt(sq/n - mean*mean)
	if math.Abs(mean-5) > 0.1 || math.Abs(sd-2) > 0.1 {
		t.Errorf("Norm(5,2): mean %v sd %v", mean, sd)
	}
}

func TestIntnBounds(t *testing.T) {
	r := New(19)
	seen := make(map[int]bool)
	for i := 0; i < 1000; i++ {
		v := r.Intn(7)
		if v < 0 || v >= 7 {
			t.Fatalf("Intn(7) = %d", v)
		}
		seen[v] = true
	}
	if len(seen) != 7 {
		t.Errorf("Intn(7) covered %d values in 1000 draws", len(seen))
	}
	defer func() {
		if recover() == nil {
			t.Error("Intn(0) did not panic")
		}
	}()
	r.Intn(0)
}

func TestPermIsPermutation(t *testing.T) {
	f := func(seed uint64, n8 uint8) bool {
		n := int(n8%64) + 1
		p := New(seed).Perm(n)
		if len(p) != n {
			return false
		}
		seen := make([]bool, n)
		for _, v := range p {
			if v < 0 || v >= n || seen[v] {
				return false
			}
			seen[v] = true
		}
		return true
	}
	if err := quick.Check(f, nil); err != nil {
		t.Error(err)
	}
}

func TestSampleDistinct(t *testing.T) {
	f := func(seed uint64, n8, k8 uint8) bool {
		n := int(n8%100) + 1
		k := int(k8) % (n + 1)
		s := New(seed).Sample(n, k)
		if len(s) != k {
			return false
		}
		seen := make(map[int]bool, k)
		for _, v := range s {
			if v < 0 || v >= n || seen[v] {
				return false
			}
			seen[v] = true
		}
		return true
	}
	if err := quick.Check(f, nil); err != nil {
		t.Error(err)
	}
}

func TestSamplePanics(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Error("Sample(3, 5) did not panic")
		}
	}()
	New(1).Sample(3, 5)
}
