// Package xrand provides a small, deterministic, splittable random number
// generator used throughout the repository so that every experiment is
// exactly reproducible across runs and machines.
//
// The generator is SplitMix64 (Steele, Lea & Flood, OOPSLA 2014). It is not
// cryptographically secure; it is fast, has a 64-bit state, passes BigCrush
// when used as described, and — crucially for our use — supports cheap
// deterministic splitting so that parallel experiment arms draw independent
// streams regardless of execution order.
package xrand

import "math"

// golden is the 64-bit golden-ratio increment used by SplitMix64.
const golden = 0x9E3779B97F4A7C15

// RNG is a deterministic pseudo-random number generator. The zero value is a
// valid generator seeded with 0; prefer New to make seeds explicit.
type RNG struct {
	state uint64
}

// New returns a generator seeded with seed.
func New(seed uint64) *RNG { return &RNG{state: seed} }

// NewFrom derives a generator from a seed and a sequence of stream labels.
// Equal (seed, labels...) always yield the same stream, and distinct label
// paths yield (for all practical purposes) independent streams. This lets
// experiment code split one master seed into per-arm streams:
//
//	rng := xrand.NewFrom(seed, dagIndex, repetition)
func NewFrom(seed uint64, labels ...uint64) *RNG {
	r := New(seed)
	for _, l := range labels {
		// Mix each label through one SplitMix64 round so that nearby
		// labels (0, 1, 2, …) land far apart in state space.
		r.state = mix(r.state ^ mix(l))
	}
	return r
}

// Split returns a new independent generator derived from r, advancing r.
func (r *RNG) Split() *RNG { return New(r.Uint64()) }

// mix is the SplitMix64 finalizer.
func mix(z uint64) uint64 {
	z = (z ^ (z >> 30)) * 0xBF58476D1CE4E5B9
	z = (z ^ (z >> 27)) * 0x94D049BB133111EB
	return z ^ (z >> 31)
}

// Uint64 returns the next 64 uniformly distributed bits.
func (r *RNG) Uint64() uint64 {
	r.state += golden
	return mix(r.state)
}

// Float64 returns a uniform float64 in [0, 1).
func (r *RNG) Float64() float64 {
	// 53 high bits scaled into [0,1).
	return float64(r.Uint64()>>11) / (1 << 53)
}

// Intn returns a uniform int in [0, n). It panics if n <= 0.
func (r *RNG) Intn(n int) int {
	if n <= 0 {
		panic("xrand: Intn called with non-positive n")
	}
	// Lemire's nearly-divisionless bounded sampling would be faster, but a
	// 64-bit modulo bias over experiment-scale n (< 2^32) is below 2^-32
	// and irrelevant for simulation workloads.
	return int(r.Uint64() % uint64(n))
}

// Uniform returns a uniform float64 in [lo, hi).
func (r *RNG) Uniform(lo, hi float64) float64 {
	return lo + (hi-lo)*r.Float64()
}

// Exp returns an exponentially distributed float64 with the given mean.
func (r *RNG) Exp(mean float64) float64 {
	u := r.Float64()
	for u == 0 {
		u = r.Float64()
	}
	return -mean * math.Log(u)
}

// Norm returns a normally distributed float64 with the given mean and
// standard deviation, via the Box–Muller transform.
func (r *RNG) Norm(mean, stddev float64) float64 {
	var u1 float64
	for u1 == 0 {
		u1 = r.Float64()
	}
	u2 := r.Float64()
	z := math.Sqrt(-2*math.Log(u1)) * math.Cos(2*math.Pi*u2)
	return mean + stddev*z
}

// LogNormal returns a log-normally distributed float64 where the underlying
// normal has the given mu and sigma.
func (r *RNG) LogNormal(mu, sigma float64) float64 {
	return math.Exp(r.Norm(mu, sigma))
}

// Perm returns a pseudo-random permutation of [0, n).
func (r *RNG) Perm(n int) []int {
	p := make([]int, n)
	for i := range p {
		p[i] = i
	}
	r.Shuffle(len(p), func(i, j int) { p[i], p[j] = p[j], p[i] })
	return p
}

// Shuffle pseudo-randomizes the order of n elements using swap, in the
// Fisher–Yates manner.
func (r *RNG) Shuffle(n int, swap func(i, j int)) {
	for i := n - 1; i > 0; i-- {
		swap(i, r.Intn(i+1))
	}
}

// Sample returns k distinct indices drawn uniformly from [0, n) in random
// order. It panics if k > n or k < 0.
func (r *RNG) Sample(n, k int) []int {
	if k < 0 || k > n {
		panic("xrand: Sample called with k out of range")
	}
	if k == 0 {
		return nil
	}
	// For small k relative to n, use rejection from a set; otherwise do a
	// partial Fisher–Yates over the full index range.
	if k*4 < n {
		seen := make(map[int]struct{}, k)
		out := make([]int, 0, k)
		for len(out) < k {
			v := r.Intn(n)
			if _, dup := seen[v]; dup {
				continue
			}
			seen[v] = struct{}{}
			out = append(out, v)
		}
		return out
	}
	p := make([]int, n)
	for i := range p {
		p[i] = i
	}
	for i := 0; i < k; i++ {
		j := i + r.Intn(n-i)
		p[i], p[j] = p[j], p[i]
	}
	return p[:k]
}
