package sword

import (
	"math"
	"testing"
)

// FuzzDecode asserts the SWORD XML decoder never panics on malformed input
// and that accepted requests survive an encode → re-decode round trip.
func FuzzDecode(f *testing.F) {
	clock := AtLeast(2800, 3000, 0.1)
	mem := AtLeast(1024, 2048, 0.01)
	lat := AtMost(10, math.Inf(1), 0.5)
	req := &Request{
		DistQueryBudget: 30,
		OptimizerBudget: 100,
		Groups: []Group{{
			Name: "rc", NumMachines: 8,
			Clock: &clock, FreeMem: &mem, Latency: &lat,
			OS: &ValuePenalty{Value: "Linux", Penalty: 0},
		}},
		Constraints: []Constraint{{GroupNames: "rc rc", Latency: &lat}},
	}
	valid, err := req.Encode()
	if err != nil {
		f.Fatal(err)
	}
	seeds := []string{
		valid,
		"<request><group><name>g</name><num_machines>1</num_machines></group></request>",
		"<request></request>",
		"<request><group><name>g</name><num_machines>-3</num_machines></group>",
		"not xml at all",
		"",
	}
	for _, s := range seeds {
		f.Add(s)
	}
	f.Fuzz(func(t *testing.T, src string) {
		r, err := Decode(src)
		if err != nil {
			return
		}
		rendered, err := r.Encode()
		if err != nil {
			t.Fatalf("re-encode of accepted request failed: %v", err)
		}
		if _, err := Decode(rendered); err != nil {
			t.Fatalf("re-decode of rendered request failed: %v\nrendered:\n%s", err, rendered)
		}
	})
}
