package sword

import (
	"fmt"
	"math"
	"sort"

	"rsgen/internal/platform"
	"rsgen/internal/xrand"
)

// Region names, assigned from the synthetic network-coordinate space.
var Regions = []string{"North_America", "Europe", "Asia"}

// Node is one directory entry: a platform host plus the dynamic and
// network-coordinate state SWORD queries over.
type Node struct {
	Host       platform.Host
	CPULoad    float64
	FreeMemMB  float64
	FreeDiskMB float64
	// X, Y are Vivaldi-style synthetic network coordinates in
	// milliseconds: inter-node latency is the Euclidean distance.
	X, Y   float64
	Region string
}

// Latency returns the modeled round-trip latency in ms between two nodes.
func (n Node) Latency(o Node) float64 {
	if n.Host.ID == o.Host.ID {
		return 0
	}
	if n.Host.Cluster == o.Host.Cluster {
		return 0.1
	}
	return math.Hypot(n.X-o.X, n.Y-o.Y) + 1
}

// Directory is the queryable node population.
type Directory struct {
	Nodes []Node
}

// NewDirectory builds the directory from a platform: every cluster gets a
// coordinate in a 160 ms-wide space (three longitudinal regions), every host
// a synthetic load and free-resource state drawn from rng.
func NewDirectory(p *platform.Platform, rng *xrand.RNG) *Directory {
	type coord struct {
		x, y   float64
		region string
	}
	coords := make([]coord, len(p.Clusters))
	for i := range p.Clusters {
		x := rng.Uniform(0, 160)
		y := rng.Uniform(0, 60)
		region := Regions[int(x/160*float64(len(Regions)))%len(Regions)]
		coords[i] = coord{x: x, y: y, region: region}
	}
	d := &Directory{Nodes: make([]Node, p.NumHosts())}
	for i, h := range p.Hosts {
		c := coords[h.Cluster]
		d.Nodes[i] = Node{
			Host:       h,
			CPULoad:    rng.Uniform(0, 0.6),
			FreeMemMB:  float64(h.MemoryMB) * rng.Uniform(0.3, 1),
			FreeDiskMB: rng.Uniform(1_000, 200_000),
			X:          c.x, Y: c.y,
			Region: c.region,
		}
	}
	return d
}

// nodePenalty scores one node against a group's per-node attributes.
// Returns infeasible=false when any required bound is violated.
func nodePenalty(n Node, g *Group) (float64, bool) {
	total := 0.0
	check := func(r *Range, v float64) bool {
		if r == nil {
			return true
		}
		p, ok := r.PenaltyFor(v)
		if !ok {
			return false
		}
		total += p
		return true
	}
	if !check(g.CPULoad, n.CPULoad) {
		return 0, false
	}
	if !check(g.FreeMem, n.FreeMemMB) {
		return 0, false
	}
	if !check(g.FreeDisk, n.FreeDiskMB) {
		return 0, false
	}
	if !check(g.Clock, n.Host.ClockGHz*1000) {
		return 0, false
	}
	if g.OS != nil && g.OS.Value != "Linux" {
		// The synthetic population is all Linux; a non-Linux demand is
		// a mismatch paying the penalty (or infeasible at rate 0 —
		// SWORD treats categorical mismatch with zero tolerance as a
		// hard failure).
		if g.OS.Penalty == 0 {
			return 0, false
		}
		total += g.OS.Penalty
	}
	if g.Center != nil && g.Center.Value != n.Region {
		if g.Center.Penalty == 0 {
			return 0, false
		}
		total += g.Center.Penalty
	}
	return total, true
}

// Selection is the result of resolving a request.
type Selection struct {
	// Members maps group name → chosen nodes.
	Members map[string][]Node
	// TotalPenalty is the summed node penalties plus inter-group latency
	// penalties.
	TotalPenalty float64
}

// Hosts flattens the selection in group order.
func (s *Selection) Hosts(groups []Group) []platform.Host {
	var out []platform.Host
	for _, g := range groups {
		for _, n := range s.Members[g.Name] {
			out = append(out, n.Host)
		}
	}
	return out
}

// Select resolves the request: each group takes its NumMachines
// lowest-penalty feasible nodes (intra-group latency constraints are
// honored by preferring single-cluster placements when a latency range is
// present), then inter-group constraints are checked and their penalties
// accumulated. A violated required bound anywhere fails the whole request —
// SWORD's "best effort within requirements" semantics.
func (d *Directory) Select(req *Request) (*Selection, error) {
	return d.SelectExcluding(req, nil)
}

// SelectExcluding is Select with the given hosts masked from consideration
// before any group is filled — the leased-host exclusion the brokered
// selection loop needs to keep concurrent sessions off each other's nodes.
func (d *Directory) SelectExcluding(req *Request, excluded map[platform.HostID]bool) (*Selection, error) {
	sel := &Selection{Members: map[string][]Node{}}
	used := make(map[platform.HostID]bool, len(excluded))
	for id, on := range excluded {
		if on {
			used[id] = true
		}
	}
	for gi := range req.Groups {
		g := &req.Groups[gi]
		nodes, penalty, err := d.selectGroup(g, used)
		if err != nil {
			return nil, err
		}
		for _, n := range nodes {
			used[n.Host.ID] = true
		}
		sel.Members[g.Name] = nodes
		sel.TotalPenalty += penalty
	}
	for _, c := range req.Constraints {
		a, b, err := c.Pair()
		if err != nil {
			return nil, err
		}
		na, nb := sel.Members[a], sel.Members[b]
		if na == nil || nb == nil {
			return nil, fmt.Errorf("sword: constraint references unknown group in %q", c.GroupNames)
		}
		if c.Latency == nil {
			continue
		}
		// "At least one node in each group such that the latency
		// between that node and at least one node in the other group"
		// satisfies the range (§II.4.3.1): use the minimum pair
		// latency.
		best := math.Inf(1)
		for _, x := range na {
			for _, y := range nb {
				if l := x.Latency(y); l < best {
					best = l
				}
			}
		}
		p, ok := c.Latency.PenaltyFor(best)
		if !ok {
			return nil, fmt.Errorf("sword: inter-group latency %0.1fms between %s and %s violates required range", best, a, b)
		}
		sel.TotalPenalty += p
	}
	return sel, nil
}

// selectGroup picks the group's nodes greedily by penalty. When the group
// carries an intra-group latency range, candidate clusters are considered
// whole (nodes of one cluster are mutually ~0.1 ms apart) before mixing.
func (d *Directory) selectGroup(g *Group, used map[platform.HostID]bool) ([]Node, float64, error) {
	var cands []scoredCand
	for _, n := range d.Nodes {
		if used[n.Host.ID] {
			continue
		}
		p, ok := nodePenalty(n, g)
		if !ok {
			continue
		}
		cands = append(cands, scoredCand{node: n, penalty: p})
	}
	if len(cands) < g.NumMachines {
		return nil, 0, fmt.Errorf("sword: group %s: only %d feasible nodes for %d machines", g.Name, len(cands), g.NumMachines)
	}
	sort.SliceStable(cands, func(i, j int) bool {
		if cands[i].penalty != cands[j].penalty {
			return cands[i].penalty < cands[j].penalty
		}
		return cands[i].node.Host.ID < cands[j].node.Host.ID
	})
	if g.Latency != nil {
		// Prefer filling from one cluster: group by cluster and try the
		// lowest-penalty cluster that can host the whole group.
		byCluster := map[int][]scoredCand{}
		for _, c := range cands {
			byCluster[c.node.Host.Cluster] = append(byCluster[c.node.Host.Cluster], c)
		}
		bestCluster, bestPen := -1, math.Inf(1)
		for cl, cs := range byCluster {
			if len(cs) < g.NumMachines {
				continue
			}
			pen := 0.0
			for _, c := range cs[:g.NumMachines] {
				pen += c.penalty
			}
			if pen < bestPen || (pen == bestPen && cl < bestCluster) {
				bestCluster, bestPen = cl, pen
			}
		}
		if bestCluster >= 0 {
			cs := byCluster[bestCluster][:g.NumMachines]
			nodes := make([]Node, len(cs))
			for i, c := range cs {
				nodes[i] = c.node
			}
			return nodes, bestPen, nil
		}
		// No single cluster fits: grow the group from the largest
		// qualifying cluster, admitting only clusters within half the
		// required latency of the seed's coordinate (any two admitted
		// nodes are then pairwise within the required bound by the
		// triangle inequality).
		if nodes, pen, ok := d.growClusters(g, byCluster); ok {
			return nodes, pen, nil
		}
		// Fall through to the global pick, verifying the latency
		// requirement pairwise.
	}
	pick := cands[:g.NumMachines]
	return d.finishPick(g, pick)
}

// pickedGroup materializes a candidate pick, verifying the intra-group
// latency requirement pairwise when present.
func (d *Directory) finishPick(g *Group, pick []scoredCand) ([]Node, float64, error) {
	nodes := make([]Node, len(pick))
	total := 0.0
	for i, c := range pick {
		nodes[i] = c.node
		total += c.penalty
	}
	if g.Latency != nil {
		for i := range nodes {
			for j := i + 1; j < len(nodes); j++ {
				p, ok := g.Latency.PenaltyFor(nodes[i].Latency(nodes[j]))
				if !ok {
					return nil, 0, fmt.Errorf("sword: group %s: intra-group latency requirement unsatisfiable", g.Name)
				}
				total += p
			}
		}
	}
	return nodes, total, nil
}

// scoredCand is one feasible node with its per-node penalty.
type scoredCand struct {
	node    Node
	penalty float64
}

// growClusters fills a latency-constrained group from several clusters: the
// seed is the qualifying cluster with the most feasible nodes; further
// clusters are admitted in penalty order while their coordinates stay within
// half the required latency bound of the seed (keeping every pair within the
// bound). ok is false when the admitted clusters cannot reach NumMachines.
func (d *Directory) growClusters(g *Group, byCluster map[int][]scoredCand) ([]Node, float64, bool) {
	if g.Latency == nil || len(byCluster) == 0 {
		return nil, 0, false
	}
	// Seed: the cluster with the most feasible nodes (ties: lowest id).
	seed := -1
	for cl, cs := range byCluster {
		if seed == -1 || len(cs) > len(byCluster[seed]) || (len(cs) == len(byCluster[seed]) && cl < seed) {
			seed = cl
		}
	}
	sx, sy := byCluster[seed][0].node.X, byCluster[seed][0].node.Y
	radius := (g.Latency.ReqMax - 1) / 2 // Latency() adds a 1 ms floor
	if radius < 0 {
		radius = 0
	}
	type clusterPick struct {
		id   int
		cs   []scoredCand
		dist float64
	}
	var picks []clusterPick
	for cl, cs := range byCluster {
		dist := math.Hypot(cs[0].node.X-sx, cs[0].node.Y-sy)
		if cl != seed && dist > radius {
			continue
		}
		picks = append(picks, clusterPick{id: cl, cs: cs, dist: dist})
	}
	// Take nearer (then lower-penalty head) clusters first, seed first.
	sort.Slice(picks, func(i, j int) bool {
		if picks[i].id == seed {
			return true
		}
		if picks[j].id == seed {
			return false
		}
		if picks[i].dist != picks[j].dist {
			return picks[i].dist < picks[j].dist
		}
		return picks[i].id < picks[j].id
	})
	var chosen []scoredCand
	for _, p := range picks {
		need := g.NumMachines - len(chosen)
		if need <= 0 {
			break
		}
		take := p.cs
		if len(take) > need {
			take = take[:need]
		}
		chosen = append(chosen, take...)
	}
	if len(chosen) < g.NumMachines {
		return nil, 0, false
	}
	nodes, pen, err := d.finishPick(g, chosen)
	if err != nil {
		return nil, 0, false
	}
	return nodes, pen, true
}
