package sword

import (
	"math"
	"strings"
	"testing"

	"rsgen/internal/platform"
	"rsgen/internal/xrand"
)

func TestRangePenalty(t *testing.T) {
	r := NewRange(256, 512, math.Inf(1), math.Inf(1), 100)
	if _, ok := r.PenaltyFor(100); ok {
		t.Error("below required min should be infeasible")
	}
	if p, ok := r.PenaltyFor(300); !ok || math.Abs(p-100*(512-300)) > 1e-9 {
		t.Errorf("penalty at 300 = %v,%v", p, ok)
	}
	if p, ok := r.PenaltyFor(512); !ok || p != 0 {
		t.Errorf("penalty at desired = %v,%v", p, ok)
	}
	if p, ok := r.PenaltyFor(1e9); !ok || p != 0 {
		t.Errorf("penalty above desired min (unbounded max) = %v,%v", p, ok)
	}
	// Smaller-is-better attribute (cpu_load style).
	load := AtMost(0.1, 0.5, 2)
	if p, ok := load.PenaltyFor(0.05); !ok || p != 0 {
		t.Errorf("low load penalized: %v,%v", p, ok)
	}
	if p, ok := load.PenaltyFor(0.3); !ok || math.Abs(p-2*0.2) > 1e-9 {
		t.Errorf("mid load penalty = %v,%v", p, ok)
	}
	if _, ok := load.PenaltyFor(0.9); ok {
		t.Error("overloaded node feasible")
	}
}

func TestRangeTextRoundTrip(t *testing.T) {
	var r Range
	if err := r.UnmarshalText([]byte("256.0, 512.0, MAX, MAX, 100.0")); err != nil {
		t.Fatal(err)
	}
	if r.ReqMin != 256 || r.DesMin != 512 || !math.IsInf(r.DesMax, 1) || r.Penalty != 100 {
		t.Errorf("parsed = %+v", r)
	}
	out, err := r.MarshalText()
	if err != nil {
		t.Fatal(err)
	}
	var again Range
	if err := again.UnmarshalText(out); err != nil {
		t.Fatal(err)
	}
	if again != r {
		t.Errorf("round trip changed: %+v vs %+v", again, r)
	}
	// Descending order (Fig. II-4's cpu_load) normalizes.
	var load Range
	if err := load.UnmarshalText([]byte("0.5, 0.1, 0.1, 0.0, 0.0")); err != nil {
		t.Fatal(err)
	}
	if load.ReqMin != 0 || load.ReqMax != 0.5 {
		t.Errorf("normalization failed: %+v", load)
	}
	// Errors.
	if err := load.UnmarshalText([]byte("1, 2, 3")); err == nil {
		t.Error("short tuple accepted")
	}
	if err := load.UnmarshalText([]byte("1, 2, x, 4, 5")); err == nil {
		t.Error("non-numeric accepted")
	}
}

// figII4 is the dissertation's sample SWORD query, lightly reduced.
const figII4 = `<request>
  <dist_query_budget>30</dist_query_budget>
  <optimizer_budget>100</optimizer_budget>
  <group>
    <name>Cluster_NA</name>
    <num_machines>5</num_machines>
    <cpu_load>0.5, 0.1, 0.1, 0.0, 0.0</cpu_load>
    <free_mem>256.0, 512.0, MAX, MAX, 100.0</free_mem>
    <free_disk>500.0, 1000.0, MAX, MAX, 5.0</free_disk>
    <latency>0.0, 0.0, 10.0, 20.0, 0.5</latency>
    <os>
      <value>Linux, 0.0</value>
    </os>
    <network_coordinate_center>
      <value>North_America, 0.0</value>
    </network_coordinate_center>
  </group>
  <group>
    <name>Cluster_Europe</name>
    <num_machines>5</num_machines>
    <free_mem>256.0, 512.0, MAX, MAX, 100.0</free_mem>
    <os>
      <value>Linux, 0.0</value>
    </os>
    <network_coordinate_center>
      <value>Europe, 0.0</value>
    </network_coordinate_center>
  </group>
  <constraint>
    <group_names>Cluster_NA Cluster_Europe</group_names>
    <latency>0.0, 0.0, 50.0, 100.0, 0.5</latency>
  </constraint>
</request>`

func TestDecodeFigII4(t *testing.T) {
	req, err := Decode(figII4)
	if err != nil {
		t.Fatal(err)
	}
	if req.DistQueryBudget != 30 || req.OptimizerBudget != 100 {
		t.Errorf("budgets = %d, %d", req.DistQueryBudget, req.OptimizerBudget)
	}
	if len(req.Groups) != 2 || len(req.Constraints) != 1 {
		t.Fatalf("groups=%d constraints=%d", len(req.Groups), len(req.Constraints))
	}
	g := req.Groups[0]
	if g.Name != "Cluster_NA" || g.NumMachines != 5 {
		t.Errorf("group = %+v", g)
	}
	if g.OS == nil || g.OS.Value != "Linux" {
		t.Errorf("os = %+v", g.OS)
	}
	if g.Center == nil || g.Center.Value != "North_America" {
		t.Errorf("center = %+v", g.Center)
	}
	if g.FreeMem == nil || g.FreeMem.DesMin != 512 {
		t.Errorf("free_mem = %+v", g.FreeMem)
	}
	a, b, err := req.Constraints[0].Pair()
	if err != nil || a != "Cluster_NA" || b != "Cluster_Europe" {
		t.Errorf("pair = %q, %q, %v", a, b, err)
	}
}

func TestEncodeDecodeRoundTrip(t *testing.T) {
	req, err := Decode(figII4)
	if err != nil {
		t.Fatal(err)
	}
	out, err := req.Encode()
	if err != nil {
		t.Fatal(err)
	}
	for _, want := range []string{"<request>", "<group>", "num_machines", "network_coordinate_center", "MAX"} {
		if !strings.Contains(out, want) {
			t.Errorf("encoding missing %q:\n%s", want, out)
		}
	}
	again, err := Decode(out)
	if err != nil {
		t.Fatalf("re-decode: %v\n%s", err, out)
	}
	if len(again.Groups) != 2 || again.Groups[0].FreeMem.DesMin != 512 {
		t.Errorf("round trip changed request")
	}
}

func TestDecodeErrors(t *testing.T) {
	if _, err := Decode("<request></request>"); err == nil {
		t.Error("empty request accepted")
	}
	if _, err := Decode("not xml"); err == nil {
		t.Error("garbage accepted")
	}
	if _, err := Decode("<request><group><name>x</name><num_machines>0</num_machines></group></request>"); err == nil {
		t.Error("zero machines accepted")
	}
}

func testDirectory(t *testing.T) *Directory {
	t.Helper()
	p := platform.MustGenerate(platform.GenSpec{Clusters: 60, Year: 2006}, xrand.New(10))
	return NewDirectory(p, xrand.New(11))
}

func TestSelectSimpleGroup(t *testing.T) {
	d := testDirectory(t)
	req := &Request{Groups: []Group{{
		Name:        "workers",
		NumMachines: 8,
		FreeMem:     ptr(AtLeast(256, 512, 100)),
		CPULoad:     ptr(AtMost(0.1, 0.7, 1)),
	}}}
	sel, err := d.Select(req)
	if err != nil {
		t.Fatal(err)
	}
	nodes := sel.Members["workers"]
	if len(nodes) != 8 {
		t.Fatalf("selected %d nodes", len(nodes))
	}
	for _, n := range nodes {
		if n.FreeMemMB < 256 || n.CPULoad > 0.7 {
			t.Errorf("infeasible node selected: %+v", n)
		}
	}
	if sel.TotalPenalty < 0 {
		t.Errorf("negative penalty %v", sel.TotalPenalty)
	}
	hosts := sel.Hosts(req.Groups)
	if len(hosts) != 8 {
		t.Errorf("Hosts() returned %d", len(hosts))
	}
}

func TestSelectPrefersLowPenalty(t *testing.T) {
	d := testDirectory(t)
	// Demand high free memory with a steep penalty: chosen nodes must be
	// at the top of the feasible population.
	req := &Request{Groups: []Group{{
		Name:        "mem",
		NumMachines: 4,
		FreeMem:     ptr(AtLeast(100, 4000, 10)),
	}}}
	sel, err := d.Select(req)
	if err != nil {
		t.Fatal(err)
	}
	chosen := sel.Members["mem"]
	minChosen := math.Inf(1)
	for _, n := range chosen {
		minChosen = math.Min(minChosen, n.FreeMemMB)
	}
	// No unchosen feasible node may have strictly more memory than the
	// worst chosen one (greedy penalty order ⇒ memory order here).
	picked := map[platform.HostID]bool{}
	for _, n := range chosen {
		picked[n.Host.ID] = true
	}
	for _, n := range d.Nodes {
		if picked[n.Host.ID] {
			continue
		}
		if n.FreeMemMB > minChosen+1e-9 && n.FreeMemMB < 4000 {
			// Only a violation if this node's penalty is lower.
			if (4000-n.FreeMemMB)*10 < (4000-minChosen)*10-1e-9 {
				t.Fatalf("node with %v MB skipped while %v MB chosen", n.FreeMemMB, minChosen)
			}
		}
	}
}

func TestSelectIntraGroupLatencyPrefersOneCluster(t *testing.T) {
	d := testDirectory(t)
	req := &Request{Groups: []Group{{
		Name:        "tight",
		NumMachines: 4,
		Latency:     ptr(NewRange(0, 0, 10, 20, 0.5)),
	}}}
	sel, err := d.Select(req)
	if err != nil {
		t.Fatal(err)
	}
	nodes := sel.Members["tight"]
	c := nodes[0].Host.Cluster
	for _, n := range nodes {
		if n.Host.Cluster != c {
			t.Fatalf("latency-constrained group spans clusters")
		}
	}
}

func TestSelectInfeasible(t *testing.T) {
	d := testDirectory(t)
	req := &Request{Groups: []Group{{
		Name:        "impossible",
		NumMachines: 3,
		Clock:       ptr(AtLeast(99000, 99000, 0)),
	}}}
	if _, err := d.Select(req); err == nil {
		t.Error("impossible clock satisfied")
	}
	// More machines than exist.
	req2 := &Request{Groups: []Group{{Name: "huge", NumMachines: 10_000_000}}}
	if _, err := d.Select(req2); err == nil {
		t.Error("oversized group satisfied")
	}
}

func TestSelectInterGroupConstraint(t *testing.T) {
	d := testDirectory(t)
	req := &Request{
		Groups: []Group{
			{Name: "a", NumMachines: 3},
			{Name: "b", NumMachines: 3},
		},
		Constraints: []Constraint{{
			GroupNames: "a b",
			Latency:    ptr(NewRange(0, 0, 500, 1000, 0.1)),
		}},
	}
	sel, err := d.Select(req)
	if err != nil {
		t.Fatal(err)
	}
	if len(sel.Members["a"]) != 3 || len(sel.Members["b"]) != 3 {
		t.Error("groups incomplete")
	}
	// Unknown group in constraint.
	req.Constraints[0].GroupNames = "a zzz"
	if _, err := d.Select(req); err == nil {
		t.Error("unknown constraint group accepted")
	}
	req.Constraints[0].GroupNames = "only_one"
	if _, err := d.Select(req); err == nil {
		t.Error("malformed pair accepted")
	}
}

func TestDirectoryRegions(t *testing.T) {
	d := testDirectory(t)
	seen := map[string]bool{}
	for _, n := range d.Nodes {
		seen[n.Region] = true
		if n.Latency(n) != 0 {
			t.Fatal("self latency nonzero")
		}
	}
	if len(seen) < 2 {
		t.Errorf("only %d regions populated", len(seen))
	}
	// Same-cluster latency is the LAN constant.
	var a, b *Node
	for i := range d.Nodes {
		for j := i + 1; j < len(d.Nodes); j++ {
			if d.Nodes[i].Host.Cluster == d.Nodes[j].Host.Cluster {
				a, b = &d.Nodes[i], &d.Nodes[j]
				break
			}
		}
		if a != nil {
			break
		}
	}
	if a == nil {
		t.Skip("no co-located pair")
	}
	if got := a.Latency(*b); got != 0.1 {
		t.Errorf("intra-cluster latency = %v", got)
	}
}

func ptr(r Range) *Range { return &r }
