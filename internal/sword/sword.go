// Package sword implements the SWORD resource-discovery substrate the
// dissertation targets (§II.4.3): XML queries describing groups of nodes
// with ranged per-node and inter-node attributes carrying penalty rates, and
// a penalty-minimizing selector over a synthetic node directory with Vivaldi
// -style 2-D network coordinates.
//
// Range attributes follow SWORD's five-value form
// "reqA, desA, desB, reqB, penalty": zero penalty inside the desired
// sub-range, a linear penalty (rate × distance) between desired and required
// bounds, and infeasible outside the required range. MAX denotes +∞. The
// four bounds are normalized (sorted ascending) on parse, accepting both the
// ascending order used for bigger-is-better attributes (free_mem) and the
// descending order the dissertation's Fig. II-4 uses for cpu_load.
package sword

import (
	"encoding/xml"
	"fmt"
	"math"
	"sort"
	"strconv"
	"strings"
)

// Range is one five-value SWORD attribute constraint.
type Range struct {
	ReqMin, DesMin, DesMax, ReqMax float64
	Penalty                        float64
}

// Unbounded is the parsed value of "MAX".
var unbounded = math.Inf(1)

// NewRange builds a normalized range.
func NewRange(reqMin, desMin, desMax, reqMax, penalty float64) Range {
	b := []float64{reqMin, desMin, desMax, reqMax}
	sort.Float64s(b)
	return Range{ReqMin: b[0], DesMin: b[1], DesMax: b[2], ReqMax: b[3], Penalty: penalty}
}

// AtLeast is a bigger-is-better convenience: required ≥ req, desired ≥ des.
func AtLeast(req, des, penalty float64) Range {
	return Range{ReqMin: req, DesMin: des, DesMax: unbounded, ReqMax: unbounded, Penalty: penalty}
}

// AtMost is a smaller-is-better convenience: required ≤ req, desired ≤ des.
func AtMost(des, req, penalty float64) Range {
	return Range{ReqMin: 0, DesMin: 0, DesMax: des, ReqMax: req, Penalty: penalty}
}

// PenaltyFor returns the penalty of value v, and false when v is outside the
// required range (infeasible).
func (r Range) PenaltyFor(v float64) (float64, bool) {
	if v < r.ReqMin || v > r.ReqMax {
		return 0, false
	}
	switch {
	case v < r.DesMin:
		return r.Penalty * (r.DesMin - v), true
	case v > r.DesMax:
		return r.Penalty * (v - r.DesMax), true
	}
	return 0, true
}

// MarshalText renders the five-value comma form.
func (r Range) MarshalText() ([]byte, error) {
	f := func(v float64) string {
		if math.IsInf(v, 1) {
			return "MAX"
		}
		return strconv.FormatFloat(v, 'f', -1, 64)
	}
	return []byte(fmt.Sprintf("%s, %s, %s, %s, %s",
		f(r.ReqMin), f(r.DesMin), f(r.DesMax), f(r.ReqMax), f(r.Penalty))), nil
}

// UnmarshalText parses the five-value comma form, normalizing bound order.
func (r *Range) UnmarshalText(text []byte) error {
	parts := strings.Split(string(text), ",")
	if len(parts) != 5 {
		return fmt.Errorf("sword: range needs 5 values, got %q", text)
	}
	vals := make([]float64, 5)
	for i, p := range parts {
		p = strings.TrimSpace(p)
		if strings.EqualFold(p, "MAX") {
			vals[i] = unbounded
			continue
		}
		f, err := strconv.ParseFloat(p, 64)
		if err != nil {
			return fmt.Errorf("sword: bad range value %q: %v", p, err)
		}
		vals[i] = f
	}
	*r = NewRange(vals[0], vals[1], vals[2], vals[3], vals[4])
	return nil
}

// ValuePenalty is a categorical attribute with a mismatch penalty, e.g.
// <os><value>Linux, 0.0</value></os>.
type ValuePenalty struct {
	Value   string
	Penalty float64
}

// MarshalText renders "Value, penalty".
func (v ValuePenalty) MarshalText() ([]byte, error) {
	return []byte(fmt.Sprintf("%s, %s", v.Value, strconv.FormatFloat(v.Penalty, 'f', -1, 64))), nil
}

// UnmarshalText parses "Value, penalty".
func (v *ValuePenalty) UnmarshalText(text []byte) error {
	parts := strings.Split(string(text), ",")
	if len(parts) != 2 {
		return fmt.Errorf("sword: value/penalty needs 2 fields, got %q", text)
	}
	v.Value = strings.TrimSpace(parts[0])
	f, err := strconv.ParseFloat(strings.TrimSpace(parts[1]), 64)
	if err != nil {
		return fmt.Errorf("sword: bad penalty in %q: %v", text, err)
	}
	v.Penalty = f
	return nil
}

// wrapped nests a text-marshalable value inside a <value> element.
type wrapped[T any] struct {
	Value T `xml:"value"`
}

// Group is one equivalence class of requested nodes (§II.4.3).
type Group struct {
	Name        string        `xml:"name"`
	NumMachines int           `xml:"num_machines"`
	CPULoad     *Range        `xml:"cpu_load,omitempty"`
	FreeMem     *Range        `xml:"free_mem,omitempty"`
	FreeDisk    *Range        `xml:"free_disk,omitempty"`
	Latency     *Range        `xml:"latency,omitempty"`
	Clock       *Range        `xml:"clock,omitempty"`
	OS          *ValuePenalty `xml:"-"`
	Center      *ValuePenalty `xml:"-"`
}

// groupXML is the wire form with nested <value> elements.
type groupXML struct {
	Name        string                 `xml:"name"`
	NumMachines int                    `xml:"num_machines"`
	CPULoad     *Range                 `xml:"cpu_load,omitempty"`
	FreeMem     *Range                 `xml:"free_mem,omitempty"`
	FreeDisk    *Range                 `xml:"free_disk,omitempty"`
	Latency     *Range                 `xml:"latency,omitempty"`
	Clock       *Range                 `xml:"clock,omitempty"`
	OS          *wrapped[ValuePenalty] `xml:"os,omitempty"`
	Center      *wrapped[ValuePenalty] `xml:"network_coordinate_center,omitempty"`
}

// MarshalXML implements xml.Marshaler.
func (g Group) MarshalXML(e *xml.Encoder, start xml.StartElement) error {
	gx := groupXML{
		Name: g.Name, NumMachines: g.NumMachines,
		CPULoad: g.CPULoad, FreeMem: g.FreeMem, FreeDisk: g.FreeDisk,
		Latency: g.Latency, Clock: g.Clock,
	}
	if g.OS != nil {
		gx.OS = &wrapped[ValuePenalty]{Value: *g.OS}
	}
	if g.Center != nil {
		gx.Center = &wrapped[ValuePenalty]{Value: *g.Center}
	}
	start.Name.Local = "group"
	return e.EncodeElement(gx, start)
}

// UnmarshalXML implements xml.Unmarshaler.
func (g *Group) UnmarshalXML(d *xml.Decoder, start xml.StartElement) error {
	var gx groupXML
	if err := d.DecodeElement(&gx, &start); err != nil {
		return err
	}
	g.Name, g.NumMachines = gx.Name, gx.NumMachines
	g.CPULoad, g.FreeMem, g.FreeDisk = gx.CPULoad, gx.FreeMem, gx.FreeDisk
	g.Latency, g.Clock = gx.Latency, gx.Clock
	if gx.OS != nil {
		g.OS = &gx.OS.Value
	}
	if gx.Center != nil {
		g.Center = &gx.Center.Value
	}
	return nil
}

// Constraint is a pairwise inter-group requirement (§II.4.3.1's third
// section): at least one node pair across the named groups must satisfy the
// latency range.
type Constraint struct {
	GroupNames string `xml:"group_names"` // space-separated pair
	Latency    *Range `xml:"latency,omitempty"`
}

// Pair splits GroupNames.
func (c Constraint) Pair() (string, string, error) {
	f := strings.Fields(c.GroupNames)
	if len(f) != 2 {
		return "", "", fmt.Errorf("sword: constraint needs 2 group names, got %q", c.GroupNames)
	}
	return f[0], f[1], nil
}

// Request is a full SWORD XML query.
type Request struct {
	XMLName         xml.Name     `xml:"request"`
	DistQueryBudget int          `xml:"dist_query_budget,omitempty"`
	OptimizerBudget int          `xml:"optimizer_budget,omitempty"`
	Groups          []Group      `xml:"group"`
	Constraints     []Constraint `xml:"constraint,omitempty"`
}

// Encode renders the request as indented XML.
func (r *Request) Encode() (string, error) {
	out, err := xml.MarshalIndent(r, "", "  ")
	if err != nil {
		return "", err
	}
	return string(out), nil
}

// Decode parses a SWORD XML query.
func Decode(src string) (*Request, error) {
	var r Request
	if err := xml.Unmarshal([]byte(src), &r); err != nil {
		return nil, fmt.Errorf("sword: decode: %w", err)
	}
	if len(r.Groups) == 0 {
		return nil, fmt.Errorf("sword: request has no groups")
	}
	for i, g := range r.Groups {
		if g.Name == "" || g.NumMachines < 1 {
			return nil, fmt.Errorf("sword: group %d missing name or machines", i)
		}
	}
	return &r, nil
}
