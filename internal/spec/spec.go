// Package spec implements the automatic resource specification generator of
// dissertation Chapter VII: it combines the size prediction model (Chapter
// V), the heuristic prediction model (Chapter VI), and observations about
// the resource environment into concrete resource specifications for the
// three resource selection systems the dissertation targets — vgES (vgDL),
// Condor (ClassAds), and SWORD (XML) — and produces alternative (degraded)
// specifications when the optimal request cannot be fulfilled (Figs.
// VII-6/VII-7).
package spec

import (
	"fmt"
	"math"
	"strings"

	"rsgen/internal/classad"
	"rsgen/internal/dag"
	"rsgen/internal/heurpred"
	"rsgen/internal/knee"
	"rsgen/internal/sched"
	"rsgen/internal/sword"
	"rsgen/internal/vgdl"
)

// Generator holds the trained prediction models.
type Generator struct {
	// Size is the trained size-model family (required).
	Size *knee.ModelSet
	// Heur is the trained heuristic model; nil defaults every prediction
	// to MCP, the Chapter V reference heuristic.
	Heur *heurpred.Model
	// SCR optionally rescales predicted sizes for a non-reference
	// scheduler clock (§V.7).
	SCR *knee.SCRModel
}

// Options tune one generation request.
type Options struct {
	// Threshold selects the knee-threshold model; 0 uses the 0.1%
	// default. Ignored when UtilityLambda > 0.
	Threshold float64
	// UtilityLambda, when positive, picks the threshold by the §V.3.2.3
	// utility trade-off (lambda units of relative cost per unit of
	// performance degradation).
	UtilityLambda float64
	// ClockGHz is the preferred host clock rate; 0 defaults to 3.0.
	ClockGHz float64
	// HeterogeneityTolerance is the acceptable clock-rate spread below
	// ClockGHz, as a fraction (0.3 ⇒ hosts from 70% of ClockGHz are
	// acceptable). The dissertation's Table VI-3 finds ≤ 0.3 costs only
	// a few percent; 0 requests homogeneous resources.
	HeterogeneityTolerance float64
	// MinMemoryMB is the per-host memory floor; 0 defaults to 1024.
	MinMemoryMB int
	// SCRValue is the scheduler-clock ratio the application will run
	// under; 0 means the 2.80 GHz reference (no adjustment).
	SCRValue float64
	// MixedParallel requests cluster-shaped resources instead of a bag of
	// individual hosts: the §III.1 future-work extension for
	// mixed-parallel applications whose DAG nodes are themselves
	// data-parallel. The vgDL becomes a ClusterOf (identical,
	// well-connected nodes), the SWORD group demands LAN-class intra-group
	// latency, and the ClassAd carries a WantsSingleCluster marker.
	MixedParallel bool
	// Heuristic, when non-empty, pins the scheduling heuristic instead of
	// predicting it (must name an implemented heuristic, e.g. "MCP").
	Heuristic string
}

func (o Options) withDefaults() Options {
	if o.ClockGHz == 0 {
		o.ClockGHz = 3.0
	}
	if o.MinMemoryMB == 0 {
		o.MinMemoryMB = 1024
	}
	return o
}

// Specification is one complete generated resource specification.
type Specification struct {
	// Heuristic is the predicted best scheduling heuristic.
	Heuristic string
	// RCSize is the predicted best resource collection size.
	RCSize int
	// MinClockGHz–MaxClockGHz is the acceptable clock range.
	MinClockGHz float64
	MaxClockGHz float64
	// MinMemoryMB is the per-host memory requirement.
	MinMemoryMB int
	// Threshold is the knee threshold the size came from.
	Threshold float64

	// MixedParallel marks a cluster-shaped request (§III.1 extension).
	MixedParallel bool

	// The three concrete specification languages (Figs. VII-3/4/5).
	VgDL     string
	ClassAd  string
	SwordXML string
}

// Generate produces the specification for one DAG.
func (g *Generator) Generate(d *dag.DAG, opts Options) (*Specification, error) {
	if g.Size == nil || len(g.Size.Models) == 0 {
		return nil, fmt.Errorf("spec: generator has no size model")
	}
	opts = opts.withDefaults()
	chars := d.Characteristics()

	var model *knee.Model
	switch {
	case opts.UtilityLambda > 0:
		model = g.Size.ChooseThreshold(opts.UtilityLambda)
	case opts.Threshold > 0:
		m, err := g.Size.ByThreshold(opts.Threshold)
		if err != nil {
			return nil, err
		}
		model = m
	default:
		model = g.Size.Default()
	}

	size := model.PredictSize(chars)
	if w := d.Width(); size > w {
		size = w // no schedule uses more hosts than the DAG width
	}
	if g.SCR != nil && opts.SCRValue > 0 {
		size = g.SCR.Adjust(size, opts.SCRValue)
		if w := d.Width(); size > w {
			size = w
		}
	}

	heur := "MCP"
	switch {
	case opts.Heuristic != "":
		h, err := sched.ByName(opts.Heuristic)
		if err != nil {
			return nil, fmt.Errorf("spec: %w", err)
		}
		heur = h.Name()
	case g.Heur != nil:
		h, err := g.Heur.Predict(chars)
		if err == nil && h != "" {
			heur = h
		}
	}

	s := &Specification{
		Heuristic:     heur,
		RCSize:        size,
		MinClockGHz:   opts.ClockGHz * (1 - opts.HeterogeneityTolerance),
		MaxClockGHz:   opts.ClockGHz,
		MinMemoryMB:   opts.MinMemoryMB,
		Threshold:     model.Threshold,
		MixedParallel: opts.MixedParallel,
	}
	s.VgDL = renderVgDL(s)
	s.ClassAd = renderClassAd(s, d)
	s.SwordXML = renderSword(s)
	return s, nil
}

// renderVgDL emits the Fig. VII-5 style vgDL: a TightBag of the predicted
// size with a clock floor, ranked by clock so the finder prefers faster
// hosts inside the tolerated range.
func renderVgDL(s *Specification) string {
	kind := vgdl.TightBag
	if s.MixedParallel {
		// Mixed-parallel applications need identical well-connected
		// nodes: one physical cluster.
		kind = vgdl.ClusterAgg
	}
	v := &vgdl.Spec{
		Name: "VG",
		Aggregates: []vgdl.Aggregate{{
			Kind:    kind,
			NodeVar: "nodes",
			Min:     s.RCSize,
			Max:     s.RCSize,
			Rank:    "Clock",
			Constraints: []vgdl.Constraint{
				{Attr: "Clock", Op: ">=", Value: fmt.Sprintf("%d", int(s.MinClockGHz*1000))},
				{Attr: "Memory", Op: ">=", Value: fmt.Sprintf("%d", s.MinMemoryMB)},
			},
		}},
	}
	return v.String()
}

// renderClassAd emits the Fig. VII-3 style job ClassAd: a parallel-universe
// request for MachineCount matching machines with the clock and memory
// floors, ranked by clock, with the predicted heuristic recorded for the
// launcher.
func renderClassAd(s *Specification, d *dag.DAG) string {
	ad := classad.NewAd()
	ad.SetStr("Type", "Job")
	ad.SetStr("Universe", "parallel")
	ad.SetStr("SchedulingHeuristic", s.Heuristic)
	ad.SetNum("MachineCount", float64(s.RCSize))
	ad.SetNum("DAGSize", float64(d.Size()))
	if s.MixedParallel {
		ad.SetBool("WantsSingleCluster", true)
	}
	req, _ := classad.ParseExpr(fmt.Sprintf(
		"other.Type == \"Machine\" && other.OpSys == \"LINUX\" && other.Clock >= %d && other.Memory >= %d",
		int(s.MinClockGHz*1000), s.MinMemoryMB))
	ad.Set("Requirements", req)
	rank, _ := classad.ParseExpr("other.Clock")
	ad.Set("Rank", rank)
	return ad.String()
}

// renderSword emits the Fig. VII-4 style SWORD XML: one group of the
// predicted size with clock and memory requirements, the intra-group
// latency range standing in for the TightBag's "good connectivity", and the
// dissertation's example budgets.
func renderSword(s *Specification) string {
	clock := sword.AtLeast(s.MinClockGHz*1000, s.MaxClockGHz*1000, 0.1)
	mem := sword.AtLeast(float64(s.MinMemoryMB), float64(s.MinMemoryMB)*2, 0.01)
	// "Good connectivity" as SWORD expresses it: desired ≤ 10 ms with a
	// penalty rate beyond, but no hard bound — large groups necessarily
	// span clusters, and SWORD's semantics are best-effort penalties.
	lat := sword.AtMost(10, math.Inf(1), 0.5)
	if s.MixedParallel {
		// LAN-class latency, required: the group must be one cluster.
		lat = sword.AtMost(0.5, 1, 0.5)
	}
	load := sword.AtMost(0.1, 0.5, 1.0)
	req := &sword.Request{
		DistQueryBudget: 30,
		OptimizerBudget: 100,
		Groups: []sword.Group{{
			Name:        "rc",
			NumMachines: s.RCSize,
			Clock:       &clock,
			FreeMem:     &mem,
			Latency:     &lat,
			CPULoad:     &load,
			OS:          &sword.ValuePenalty{Value: "Linux", Penalty: 0},
		}},
	}
	out, err := req.Encode()
	if err != nil {
		// The request is built from validated values; encoding cannot
		// fail except on programmer error.
		panic(fmt.Sprintf("spec: sword encode: %v", err))
	}
	return out
}

// Summary renders a one-screen human-readable digest.
func (s *Specification) Summary() string {
	var b strings.Builder
	fmt.Fprintf(&b, "heuristic:   %s\n", s.Heuristic)
	fmt.Fprintf(&b, "rc size:     %d hosts\n", s.RCSize)
	fmt.Fprintf(&b, "clock range: %.2f–%.2f GHz\n", s.MinClockGHz, s.MaxClockGHz)
	fmt.Fprintf(&b, "memory:      ≥ %d MB/host\n", s.MinMemoryMB)
	fmt.Fprintf(&b, "threshold:   %.1f%%\n", s.Threshold*100)
	return b.String()
}

// EquivalentSize finds, by direct evaluation, the smallest RC size at
// altClock whose turn-around matches (within tol, e.g. 0.02) what baseSize
// hosts at baseClock achieve — the Fig. VII-6/VII-7 question "how many
// slower hosts replace the fast ones?". It returns ok=false when no size
// does: past the threshold the growing scheduling time means slower hosts
// can never catch up, which is exactly the phenomenon Fig. VII-7 reports.
func EquivalentSize(dags []*dag.DAG, cfg knee.SweepConfig, baseSize int, baseClock, altClock, tol float64) (int, bool, error) {
	baseCfg := cfg
	baseCfg.ClockGHz = baseClock
	base, err := knee.EvalSize(dags, baseCfg, baseSize)
	if err != nil {
		return 0, false, err
	}
	target := base.TurnAround * (1 + tol)

	altCfg := cfg
	altCfg.ClockGHz = altClock
	maxWidth := 0
	for _, d := range dags {
		if w := d.Width(); w > maxWidth {
			maxWidth = w
		}
	}
	limit := maxWidth * 2
	if limit < baseSize*4 {
		limit = baseSize * 4
	}
	runningMin := math.Inf(1)
	rising := 0
	for size := baseSize; size <= limit; size = nextSize(size) {
		p, err := knee.EvalSize(dags, altCfg, size)
		if err != nil {
			return 0, false, err
		}
		if p.TurnAround <= target {
			return size, true, nil
		}
		if p.TurnAround < runningMin {
			runningMin = p.TurnAround
			rising = 0
		} else {
			rising++
			// The curve has bottomed out above the target: no RC of
			// slower hosts reaches the base turn-around.
			if rising >= 3 {
				return 0, false, nil
			}
		}
	}
	return 0, false, nil
}

func nextSize(s int) int {
	n := int(math.Ceil(float64(s) * 1.10))
	if n <= s {
		n = s + 1
	}
	return n
}

// Alternative is one degraded specification option.
type Alternative struct {
	ClockGHz float64
	RCSize   int
	// RelativeSize is RCSize / the base specification's size: the Fig.
	// VII-7 threshold ratio.
	RelativeSize float64
	Spec         *Specification
}

// Alternatives produces the ordered fallback list of §VII: when the base
// specification (RCSize hosts at ClockGHz) cannot be fulfilled, each
// successively slower clock class is offered with the (measured)
// equivalent RC size. Clock classes whose curve can never match the base
// turn-around within tol are omitted.
func (g *Generator) Alternatives(d *dag.DAG, base *Specification, clockClasses []float64, cfg knee.SweepConfig, tol float64) ([]Alternative, error) {
	var out []Alternative
	dags := []*dag.DAG{d}
	for _, clock := range clockClasses {
		if clock >= base.MaxClockGHz {
			continue
		}
		size, ok, err := EquivalentSize(dags, cfg, base.RCSize, base.MaxClockGHz, clock, tol)
		if err != nil {
			return nil, err
		}
		if !ok {
			continue
		}
		alt := &Specification{
			Heuristic:   base.Heuristic,
			RCSize:      size,
			MinClockGHz: clock * (1 - (1 - base.MinClockGHz/base.MaxClockGHz)),
			MaxClockGHz: clock,
			MinMemoryMB: base.MinMemoryMB,
			Threshold:   base.Threshold,
		}
		alt.VgDL = renderVgDL(alt)
		alt.ClassAd = renderClassAd(alt, d)
		alt.SwordXML = renderSword(alt)
		out = append(out, Alternative{
			ClockGHz:     clock,
			RCSize:       size,
			RelativeSize: float64(size) / float64(base.RCSize),
			Spec:         alt,
		})
	}
	return out, nil
}
