package spec

import (
	"math"
	"strings"
	"testing"

	"rsgen/internal/classad"
	"rsgen/internal/dag"
	"rsgen/internal/heurpred"
	"rsgen/internal/knee"
	"rsgen/internal/platform"
	"rsgen/internal/sword"
	"rsgen/internal/vgdl"
	"rsgen/internal/xrand"
)

// trainModels builds small real models shared across tests.
func trainModels(t *testing.T) *Generator {
	t.Helper()
	size, err := knee.Train(knee.TrainConfig{
		Sizes:      []int{100, 300},
		CCRs:       []float64{0.01, 0.5},
		Alphas:     []float64{0.4, 0.6, 0.8},
		Betas:      []float64{0.1, 0.5, 1.0},
		Reps:       2,
		Density:    0.5,
		MeanCost:   40,
		Thresholds: []float64{0.001, 0.02},
		Seed:       21,
	})
	if err != nil {
		t.Fatal(err)
	}
	heur, err := heurpred.Train(heurpred.TrainConfig{
		Sizes:  []int{100, 300},
		CCRs:   []float64{0.1},
		Alphas: []float64{0.6},
		Betas:  []float64{0.5},
		Reps:   1,
		Seed:   22,
		Sweep:  knee.SweepConfig{MaxSize: 80},
	})
	if err != nil {
		t.Fatal(err)
	}
	return &Generator{Size: size, Heur: heur}
}

func testDAG(t *testing.T) *dag.DAG {
	t.Helper()
	return dag.MustGenerate(dag.GenSpec{
		Size: 200, CCR: 0.1, Parallelism: 0.6, Density: 0.5, Regularity: 0.5, MeanCost: 40,
	}, xrand.New(33))
}

func TestGenerateProducesAllThreeLanguages(t *testing.T) {
	g := trainModels(t)
	d := testDAG(t)
	s, err := g.Generate(d, Options{ClockGHz: 3.0, HeterogeneityTolerance: 0.2})
	if err != nil {
		t.Fatal(err)
	}
	if s.RCSize < 1 || s.RCSize > d.Width() {
		t.Errorf("RC size %d outside [1, width %d]", s.RCSize, d.Width())
	}
	if s.Heuristic == "" {
		t.Error("no heuristic predicted")
	}
	if math.Abs(s.MinClockGHz-2.4) > 1e-9 || s.MaxClockGHz != 3.0 {
		t.Errorf("clock range %v–%v", s.MinClockGHz, s.MaxClockGHz)
	}

	// vgDL parses back and encodes the same size.
	v, err := vgdl.Parse(s.VgDL)
	if err != nil {
		t.Fatalf("generated vgDL does not parse: %v\n%s", err, s.VgDL)
	}
	if v.Aggregates[0].Min != s.RCSize || v.Aggregates[0].Max != s.RCSize {
		t.Errorf("vgDL range [%d:%d] ≠ size %d", v.Aggregates[0].Min, v.Aggregates[0].Max, s.RCSize)
	}

	// ClassAd parses back with the machine count and a requirements expr.
	ad, err := classad.Parse(s.ClassAd)
	if err != nil {
		t.Fatalf("generated ClassAd does not parse: %v\n%s", err, s.ClassAd)
	}
	if got := ad.EvalAttr("MachineCount", nil); got.Num != float64(s.RCSize) {
		t.Errorf("ClassAd MachineCount = %v", got.Num)
	}
	if _, ok := ad.Get("Requirements"); !ok {
		t.Error("ClassAd missing Requirements")
	}

	// SWORD XML decodes with one group of the right size.
	req, err := sword.Decode(s.SwordXML)
	if err != nil {
		t.Fatalf("generated SWORD XML does not decode: %v\n%s", err, s.SwordXML)
	}
	if len(req.Groups) != 1 || req.Groups[0].NumMachines != s.RCSize {
		t.Errorf("SWORD groups = %+v", req.Groups)
	}

	if sum := s.Summary(); !strings.Contains(sum, "rc size") {
		t.Errorf("summary missing fields: %s", sum)
	}
}

func TestGeneratedClassAdMatchesRealMachines(t *testing.T) {
	// End-to-end: the generated ClassAd must match qualifying machine ads
	// from a synthetic platform and reject others.
	g := trainModels(t)
	s, err := g.Generate(testDAG(t), Options{ClockGHz: 2.8, HeterogeneityTolerance: 0})
	if err != nil {
		t.Fatal(err)
	}
	ad, err := classad.Parse(s.ClassAd)
	if err != nil {
		t.Fatal(err)
	}
	p := platform.MustGenerate(platform.GenSpec{Clusters: 60, Year: 2006}, xrand.New(3))
	machines := classad.MachineAds(p)
	matched := classad.MatchBest(ad, machines, 0)
	for _, m := range matched {
		if m.EvalAttr("Clock", nil).Num < 2800 {
			t.Error("matched a machine below the clock floor")
		}
	}
	if len(matched) == 0 {
		t.Error("generated ClassAd matched no machines on a 2006 platform")
	}
}

func TestGeneratedVgDLResolvable(t *testing.T) {
	g := trainModels(t)
	s, err := g.Generate(testDAG(t), Options{ClockGHz: 2.0, HeterogeneityTolerance: 0.3})
	if err != nil {
		t.Fatal(err)
	}
	v, err := vgdl.Parse(s.VgDL)
	if err != nil {
		t.Fatal(err)
	}
	p := platform.MustGenerate(platform.GenSpec{Clusters: 200, Year: 2006}, xrand.New(4))
	rc, err := vgdl.NewFinder(p).Find(v)
	if err != nil {
		t.Fatalf("vgES finder could not satisfy the generated spec: %v", err)
	}
	if rc.Size() != s.RCSize {
		t.Errorf("finder returned %d hosts, spec asked %d", rc.Size(), s.RCSize)
	}
}

func TestThresholdAndUtilityOptions(t *testing.T) {
	g := trainModels(t)
	d := testDAG(t)
	def, err := g.Generate(d, Options{})
	if err != nil {
		t.Fatal(err)
	}
	if def.Threshold != 0.001 {
		t.Errorf("default threshold = %v", def.Threshold)
	}
	loose, err := g.Generate(d, Options{Threshold: 0.02})
	if err != nil {
		t.Fatal(err)
	}
	if loose.Threshold != 0.02 {
		t.Errorf("explicit threshold = %v", loose.Threshold)
	}
	// Looser thresholds never ask for more hosts.
	if loose.RCSize > def.RCSize {
		t.Errorf("2%% threshold size %d > 0.1%% size %d", loose.RCSize, def.RCSize)
	}
	if _, err := g.Generate(d, Options{Threshold: 0.77}); err == nil {
		t.Error("unknown threshold accepted")
	}
	util, err := g.Generate(d, Options{UtilityLambda: 0.1})
	if err != nil {
		t.Fatal(err)
	}
	found := false
	for _, m := range g.Size.Models {
		if m.Threshold == util.Threshold {
			found = true
		}
	}
	if !found {
		t.Errorf("utility chose threshold %v not in the trained family", util.Threshold)
	}
}

func TestGenerateWithoutModels(t *testing.T) {
	var g Generator
	if _, err := g.Generate(testDAG(t), Options{}); err == nil {
		t.Error("generator without size model succeeded")
	}
}

func TestSCRAdjustment(t *testing.T) {
	g := trainModels(t)
	g.SCR = &knee.SCRModel{Exponent: 0.5, BaseKnee: 10}
	d := testDAG(t)
	base, err := g.Generate(d, Options{})
	if err != nil {
		t.Fatal(err)
	}
	fast, err := g.Generate(d, Options{SCRValue: 4})
	if err != nil {
		t.Fatal(err)
	}
	// SCR 4 with exponent 0.5 doubles the size (capped at width).
	want := base.RCSize * 2
	if w := d.Width(); want > w {
		want = w
	}
	if fast.RCSize != want {
		t.Errorf("SCR-adjusted size %d, want %d", fast.RCSize, want)
	}
}

func TestEquivalentSizeFasterNeedsFewer(t *testing.T) {
	d := testDAG(t)
	dags := []*dag.DAG{d}
	cfg := knee.SweepConfig{}
	// Equivalent of 20 hosts at 2.0 GHz in 3.5 GHz hosts must be ≤ 20
	// hosts... conversely the 2.0 GHz equivalent of 20×3.5 GHz must be
	// more than 20.
	size, ok, err := EquivalentSize(dags, cfg, 20, 3.5, 2.0, 0.02)
	if err != nil {
		t.Fatal(err)
	}
	if !ok {
		t.Skip("no 2.0 GHz equivalent within the DAG's width (threshold reached)")
	}
	if size <= 20 {
		t.Errorf("slower hosts equivalent %d not above base 20", size)
	}
}

func TestEquivalentSizeImpossible(t *testing.T) {
	// A serial chain: makespan is clock-bound, so no number of slow hosts
	// matches fast hosts.
	tasks := make([]dag.Task, 30)
	var edges []dag.Edge
	for i := range tasks {
		tasks[i] = dag.Task{ID: dag.TaskID(i), Cost: 10}
		if i > 0 {
			edges = append(edges, dag.Edge{From: dag.TaskID(i - 1), To: dag.TaskID(i), Cost: 0.1})
		}
	}
	chain := dag.MustNew(tasks, edges)
	_, ok, err := EquivalentSize([]*dag.DAG{chain}, knee.SweepConfig{}, 2, 3.5, 2.0, 0.02)
	if err != nil {
		t.Fatal(err)
	}
	if ok {
		t.Error("slow hosts matched a clock-bound chain")
	}
}

func TestAlternatives(t *testing.T) {
	g := trainModels(t)
	d := testDAG(t)
	base, err := g.Generate(d, Options{ClockGHz: 3.5})
	if err != nil {
		t.Fatal(err)
	}
	alts, err := g.Alternatives(d, base, []float64{3.5, 3.0, 2.4}, knee.SweepConfig{}, 0.05)
	if err != nil {
		t.Fatal(err)
	}
	for _, a := range alts {
		if a.ClockGHz >= 3.5 {
			t.Errorf("alternative at base clock %v offered", a.ClockGHz)
		}
		if a.RCSize < base.RCSize {
			t.Errorf("alternative at %v GHz uses fewer hosts (%d) than base (%d)",
				a.ClockGHz, a.RCSize, base.RCSize)
		}
		if a.RelativeSize < 1 {
			t.Errorf("relative size %v < 1", a.RelativeSize)
		}
		if _, err := vgdl.Parse(a.Spec.VgDL); err != nil {
			t.Errorf("alternative vgDL invalid: %v", err)
		}
	}
}
