package spec

import (
	"strings"
	"testing"

	"rsgen/internal/platform"
	"rsgen/internal/sword"
	"rsgen/internal/vgdl"
	"rsgen/internal/xrand"
)

func TestMixedParallelSpecification(t *testing.T) {
	g := trainModels(t)
	d := testDAG(t)
	s, err := g.Generate(d, Options{ClockGHz: 2.4, MixedParallel: true})
	if err != nil {
		t.Fatal(err)
	}
	if !s.MixedParallel {
		t.Error("MixedParallel flag not propagated")
	}
	// vgDL must request a ClusterOf, not a TightBag.
	if !strings.Contains(s.VgDL, "ClusterOf") {
		t.Errorf("mixed-parallel vgDL not a ClusterOf:\n%s", s.VgDL)
	}
	v, err := vgdl.Parse(s.VgDL)
	if err != nil {
		t.Fatal(err)
	}
	if v.Aggregates[0].Kind != vgdl.ClusterAgg {
		t.Errorf("parsed aggregate kind %v", v.Aggregates[0].Kind)
	}
	// ClassAd carries the single-cluster marker.
	if !strings.Contains(s.ClassAd, "WantsSingleCluster") {
		t.Errorf("mixed-parallel ClassAd missing marker:\n%s", s.ClassAd)
	}
	// SWORD demands LAN-class intra-group latency (hard bound 1 ms).
	req, err := sword.Decode(s.SwordXML)
	if err != nil {
		t.Fatal(err)
	}
	if lat := req.Groups[0].Latency; lat == nil || lat.ReqMax > 1+1e-9 {
		t.Errorf("mixed-parallel SWORD latency = %+v, want required ≤ 1ms", req.Groups[0].Latency)
	}
}

func TestMixedParallelVgDLResolvesToOneCluster(t *testing.T) {
	g := trainModels(t)
	d := testDAG(t)
	// Small enough to fit real clusters, slow enough clock to qualify many.
	s, err := g.Generate(d, Options{ClockGHz: 2.0, MixedParallel: true, Threshold: 0.02})
	if err != nil {
		t.Fatal(err)
	}
	p := platform.MustGenerate(platform.GenSpec{Clusters: 300, Year: 2007}, xrand.New(12))
	v, err := vgdl.Parse(s.VgDL)
	if err != nil {
		t.Fatal(err)
	}
	rc, err := vgdl.NewFinder(p).Find(v)
	if err != nil {
		t.Skipf("no single cluster of %d hosts on this platform: %v", s.RCSize, err)
	}
	c := rc.Hosts[0].Cluster
	for _, h := range rc.Hosts {
		if h.Cluster != c {
			t.Fatal("mixed-parallel selection spans clusters")
		}
	}
}
