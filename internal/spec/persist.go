package spec

import (
	"encoding/json"
	"errors"
	"fmt"
	"io"

	"rsgen/internal/heurpred"
	"rsgen/internal/knee"
)

// ArtifactFormatVersion is the generator-artifact version SaveGenerator
// writes. LoadGenerator accepts artifacts up to and including this version
// (legacy unversioned {"size":…,"heuristic":…} envelopes decode as v0) and
// rejects anything newer.
const ArtifactFormatVersion = 1

const artifactFormat = "rsgen-generator"

// artifactWire is the on-disk form of a trained generator: every model in
// one JSON document, plus training-provenance metadata so loaders can
// report how much work the artifact saves.
type artifactWire struct {
	Format  string `json:"format,omitempty"`
	Version int    `json:"version,omitempty"`
	// TrainSeconds is the wall-clock cost of the training run that
	// produced the artifact (0 when unknown).
	TrainSeconds float64         `json:"train_seconds,omitempty"`
	Size         *knee.ModelSet  `json:"size"`
	Heuristic    *heurpred.Model `json:"heuristic,omitempty"`
	SCR          *knee.SCRModel  `json:"scr,omitempty"`
}

// SaveGenerator writes the generator's trained models as one versioned JSON
// artifact. trainSeconds records the training cost the artifact amortizes;
// pass 0 when unknown.
func SaveGenerator(w io.Writer, g *Generator, trainSeconds float64) error {
	if g == nil || g.Size == nil || len(g.Size.Models) == 0 {
		return errors.New("spec: cannot save a generator without a size model")
	}
	enc := json.NewEncoder(w)
	enc.SetIndent("", "  ")
	return enc.Encode(artifactWire{
		Format:       artifactFormat,
		Version:      ArtifactFormatVersion,
		TrainSeconds: trainSeconds,
		Size:         g.Size,
		Heuristic:    g.Heur,
		SCR:          g.SCR,
	})
}

// LoadGenerator reads an artifact written by SaveGenerator (or a legacy
// unversioned model envelope) and returns the assembled generator plus the
// recorded training cost in seconds (0 when the artifact predates the
// field).
func LoadGenerator(r io.Reader) (*Generator, float64, error) {
	var w artifactWire
	if err := json.NewDecoder(r).Decode(&w); err != nil {
		return nil, 0, fmt.Errorf("spec: load generator: %w", err)
	}
	if w.Format != "" && w.Format != artifactFormat {
		return nil, 0, fmt.Errorf("spec: artifact format %q, want %q", w.Format, artifactFormat)
	}
	if w.Version > ArtifactFormatVersion {
		return nil, 0, fmt.Errorf("spec: artifact version %d newer than supported %d", w.Version, ArtifactFormatVersion)
	}
	if w.Size == nil || len(w.Size.Models) == 0 {
		return nil, 0, errors.New("spec: artifact has no size models")
	}
	return &Generator{Size: w.Size, Heur: w.Heuristic, SCR: w.SCR}, w.TrainSeconds, nil
}
