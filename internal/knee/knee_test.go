package knee

import (
	"bytes"
	"math"
	"testing"

	"rsgen/internal/dag"
	"rsgen/internal/sched"
	"rsgen/internal/xrand"
)

// genSet builds the repetition set for one configuration.
func genSet(t *testing.T, size int, ccr, alpha, beta float64, reps int) []*dag.DAG {
	t.Helper()
	spec := dag.GenSpec{Size: size, CCR: ccr, Parallelism: alpha, Density: 0.5, Regularity: beta, MeanCost: 40}
	dags := make([]*dag.DAG, reps)
	for r := range dags {
		dags[r] = dag.MustGenerate(spec, xrand.NewFrom(99, uint64(r)))
	}
	return dags
}

func TestKneeDetectionSyntheticCurve(t *testing.T) {
	// Hand-built curve: improves to 100 s at size 32, then flat, then
	// grows. Knee at 0.1% must be 32; at 10% must be earlier.
	c := Curve{Points: []Point{
		{Size: 1, TurnAround: 1000},
		{Size: 4, TurnAround: 400},
		{Size: 8, TurnAround: 200},
		{Size: 16, TurnAround: 108},
		{Size: 32, TurnAround: 100},
		{Size: 64, TurnAround: 100.02},
		{Size: 128, TurnAround: 101},
	}}
	if k, turn := c.Knee(0.001); k != 32 || turn != 100 {
		t.Errorf("knee(0.1%%) = %d (%v), want 32 (100)", k, turn)
	}
	// 10% threshold: size 16 improves only 8/108 = 7.4% < 10% → knee 16.
	if k, _ := c.Knee(0.10); k != 16 {
		t.Errorf("knee(10%%) = %d, want 16", k)
	}
	if b, bt := c.Best(); b != 32 || bt != 100 {
		t.Errorf("best = %d (%v)", b, bt)
	}
	// Monotone-decreasing tail: knee falls back to the last point.
	mono := Curve{Points: []Point{
		{Size: 1, TurnAround: 100},
		{Size: 2, TurnAround: 50},
		{Size: 4, TurnAround: 25},
	}}
	if k, _ := mono.Knee(0.001); k != 4 {
		t.Errorf("monotone knee = %d, want 4 (last)", k)
	}
}

func TestKneeThresholdMonotone(t *testing.T) {
	// Looser thresholds can only shrink (or keep) the knee: they accept
	// more residual improvement.
	dags := genSet(t, 300, 0.01, 0.6, 0.5, 3)
	curve, err := Sweep(dags, SweepConfig{})
	if err != nil {
		t.Fatal(err)
	}
	prev := math.MaxInt
	for _, thr := range Thresholds {
		k, _ := curve.Knee(thr)
		if k > prev {
			t.Errorf("knee grew from %d to %d at threshold %v", prev, k, thr)
		}
		prev = k
	}
}

func TestSweepCurveShape(t *testing.T) {
	// The §V.2.2 shape: steep improvement at small sizes, then a plateau;
	// the knee's turn-around within a few percent of the global best.
	dags := genSet(t, 300, 0.01, 0.6, 0.5, 3)
	curve, err := Sweep(dags, SweepConfig{})
	if err != nil {
		t.Fatal(err)
	}
	if len(curve.Points) < 10 {
		t.Fatalf("sweep produced %d points", len(curve.Points))
	}
	first := curve.Points[0]
	_, bestT := curve.Best()
	if first.TurnAround < 4*bestT {
		t.Errorf("1-host turn-around %v not ≫ best %v", first.TurnAround, bestT)
	}
	k, kt := curve.Knee(DefaultThreshold)
	if kt > bestT*1.01 {
		t.Errorf("knee turn-around %v more than 1%% above best %v", kt, bestT)
	}
	if k <= 1 {
		t.Errorf("knee = %d for a wide parallel DAG", k)
	}
	// Scheduling time must increase with RC size (MCP is O(m) per task).
	last := curve.Points[len(curve.Points)-1]
	if last.SchedTime <= first.SchedTime {
		t.Errorf("scheduling time not increasing: %v → %v", first.SchedTime, last.SchedTime)
	}
}

func TestKneeGrowsWithParallelism(t *testing.T) {
	// Table V-2's dominant trend: knee grows (roughly exponentially)
	// with α.
	knees := map[float64]int{}
	for _, alpha := range []float64{0.4, 0.6, 0.8} {
		dags := genSet(t, 300, 0.01, alpha, 0.5, 3)
		curve, err := Sweep(dags, SweepConfig{})
		if err != nil {
			t.Fatal(err)
		}
		knees[alpha], _ = curve.Knee(DefaultThreshold)
	}
	if !(knees[0.4] < knees[0.6] && knees[0.6] < knees[0.8]) {
		t.Errorf("knee not increasing in α: %v", knees)
	}
}

func TestKneeShrinksWithCCR(t *testing.T) {
	// §V.2.1: higher communication favors fewer hosts.
	loCCR := genSet(t, 300, 0.01, 0.6, 0.5, 3)
	hiCCR := genSet(t, 300, 1.0, 0.6, 0.5, 3)
	cfg := SweepConfig{BandwidthMbps: 1000} // make communication visible
	cl, err := Sweep(loCCR, cfg)
	if err != nil {
		t.Fatal(err)
	}
	ch, err := Sweep(hiCCR, cfg)
	if err != nil {
		t.Fatal(err)
	}
	kLo, _ := cl.Knee(DefaultThreshold)
	kHi, _ := ch.Knee(DefaultThreshold)
	if kHi >= kLo {
		t.Errorf("knee did not shrink with CCR: lo=%d hi=%d", kLo, kHi)
	}
}

func TestEvalSizeErrors(t *testing.T) {
	dags := genSet(t, 50, 0.1, 0.5, 0.5, 1)
	if _, err := EvalSize(dags, SweepConfig{}, 0); err == nil {
		t.Error("EvalSize accepted size 0")
	}
	if _, err := Sweep(nil, SweepConfig{}); err == nil {
		t.Error("Sweep accepted empty DAG set")
	}
}

func TestSearchCandidates(t *testing.T) {
	c := SearchCandidates(100)
	want := map[int]bool{100: true, 110: true, 90: true, 150: true, 50: true,
		200: true, 250: true, 300: true, 25: true, 12: true, 6: true, 3: true, 1: true}
	have := map[int]bool{}
	for i := 1; i < len(c); i++ {
		if c[i] <= c[i-1] {
			t.Fatalf("candidates not strictly ascending: %v", c)
		}
	}
	for _, v := range c {
		have[v] = true
	}
	for v := range want {
		if !have[v] {
			t.Errorf("candidate set missing %d: %v", v, c)
		}
	}
	// Degenerate predicted size.
	if got := SearchCandidates(0); got[0] != 1 {
		t.Errorf("SearchCandidates(0) = %v", got)
	}
}

func TestSearchOptimalBeatsOrMatchesPrediction(t *testing.T) {
	dags := genSet(t, 200, 0.1, 0.6, 0.5, 2)
	cfg := SweepConfig{}
	pred := 40
	predPoint, err := EvalSize(dags, cfg, pred)
	if err != nil {
		t.Fatal(err)
	}
	opt, err := SearchOptimalSize(dags, cfg, pred)
	if err != nil {
		t.Fatal(err)
	}
	if opt.TurnAround > predPoint.TurnAround+1e-9 {
		t.Errorf("searched optimum %v worse than its own seed %v", opt.TurnAround, predPoint.TurnAround)
	}
}

// quickTrain builds a small but real model for the remaining tests.
func quickTrain(t *testing.T) *ModelSet {
	t.Helper()
	cfg := TrainConfig{
		Sizes:      []int{100, 300},
		CCRs:       []float64{0.01, 0.5},
		Alphas:     []float64{0.4, 0.6, 0.8},
		Betas:      []float64{0.1, 0.5, 1.0},
		Reps:       2,
		Density:    0.5,
		MeanCost:   40,
		Thresholds: []float64{0.001, 0.02},
		Seed:       7,
	}
	ms, err := Train(cfg)
	if err != nil {
		t.Fatal(err)
	}
	return ms
}

func TestTrainAndPredict(t *testing.T) {
	ms := quickTrain(t)
	if len(ms.Models) != 2 {
		t.Fatalf("trained %d models, want 2", len(ms.Models))
	}
	if len(ms.Observations) != 2*2*3*3 {
		t.Fatalf("observations = %d, want 36", len(ms.Observations))
	}
	m := ms.Default()
	if m.Threshold != 0.001 {
		t.Fatalf("default threshold = %v", m.Threshold)
	}
	// Planar fit quality: the paper reports ≤16% mean relative error; on
	// this small grid allow 40%.
	if m.FitError > 0.40 {
		t.Errorf("fit error %v too large", m.FitError)
	}
	// Predictions on grid points should be within a factor ~2 of the
	// observed knees (planar fit + exponential transform tolerance).
	for _, obs := range ms.Observations {
		c := dag.Characteristics{
			Size: obs.Size, CCR: obs.CCR,
			Parallelism: obs.Parallelism, Regularity: obs.Regularity,
		}
		pred := m.PredictSize(c)
		if pred < 1 {
			t.Fatalf("prediction %d < 1", pred)
		}
		ratio := float64(pred) / float64(obs.Knee)
		if ratio < 0.33 || ratio > 3 {
			t.Errorf("config %+v: predicted %d vs observed %d (ratio %.2f)", obs, pred, obs.Knee, ratio)
		}
	}
	// Interpolated query between grid points must land between the
	// bracketing predictions (monotone in size for fixed others).
	cLo := dag.Characteristics{Size: 100, CCR: 0.01, Parallelism: 0.6, Regularity: 0.5}
	cMid := dag.Characteristics{Size: 200, CCR: 0.01, Parallelism: 0.6, Regularity: 0.5}
	cHi := dag.Characteristics{Size: 300, CCR: 0.01, Parallelism: 0.6, Regularity: 0.5}
	pLo, pMid, pHi := m.PredictSize(cLo), m.PredictSize(cMid), m.PredictSize(cHi)
	lo, hi := pLo, pHi
	if lo > hi {
		lo, hi = hi, lo
	}
	if pMid < lo || pMid > hi {
		t.Errorf("interpolated prediction %d outside [%d, %d]", pMid, lo, hi)
	}
}

func TestModelPredictionLeadsToNearOptimalTurnAround(t *testing.T) {
	// The headline Chapter V claim: using the predicted size degrades
	// turn-around only a few percent versus the searched optimum.
	ms := quickTrain(t)
	row, err := ValidateModel(
		ModelPredictor(ms.Default()),
		[]ValidationConfig{
			{Size: 100, CCR: 0.01, Parallelism: 0.6, Regularity: 0.5},
			{Size: 300, CCR: 0.5, Parallelism: 0.4, Regularity: 0.1},
			{Size: 200, CCR: 0.2, Parallelism: 0.6, Regularity: 0.5}, // midpoints
		},
		TrainConfig{Reps: 2, Density: 0.5, MeanCost: 40, Seed: 8},
	)
	if err != nil {
		t.Fatal(err)
	}
	if row.Degradation > 0.10 {
		t.Errorf("mean degradation %.1f%% exceeds 10%%", row.Degradation*100)
	}
	if row.N != 3 {
		t.Errorf("validated %d configs", row.N)
	}
}

func TestWidthPracticeCostsMore(t *testing.T) {
	// Table V-7: DAG-width RCs cost far more than model-sized RCs.
	ms := quickTrain(t)
	cfgs := []ValidationConfig{{Size: 300, CCR: 0.01, Parallelism: 0.8, Regularity: 0.5}}
	tc := TrainConfig{Reps: 2, Density: 0.5, MeanCost: 40, Seed: 9}
	model, err := ValidateModel(ModelPredictor(ms.Default()), cfgs, tc)
	if err != nil {
		t.Fatal(err)
	}
	width, err := ValidateModel(WidthPredictor(), cfgs, tc)
	if err != nil {
		t.Fatal(err)
	}
	if width.RelCost <= model.RelCost {
		t.Errorf("width practice rel cost %v not above model %v", width.RelCost, model.RelCost)
	}
	if width.SizeDiff <= model.SizeDiff {
		t.Errorf("width practice size diff %v not above model %v", width.SizeDiff, model.SizeDiff)
	}
}

func TestChooseThreshold(t *testing.T) {
	ms := &ModelSet{Models: []*Model{
		{Threshold: 0.001, MeanDegradation: 0.002, MeanRelCost: 0.00},
		{Threshold: 0.02, MeanDegradation: 0.01, MeanRelCost: -0.20},
		{Threshold: 0.10, MeanDegradation: 0.08, MeanRelCost: -0.30},
	}}
	// Pure performance (λ=0): tightest threshold wins.
	if m := ms.ChooseThreshold(0); m.Threshold != 0.001 {
		t.Errorf("λ=0 chose %v", m.Threshold)
	}
	// 1% performance per 10% cost (λ=0.1): middle wins
	// (0.002+0 vs 0.01−0.02=−0.01 vs 0.08−0.03=0.05).
	if m := ms.ChooseThreshold(0.1); m.Threshold != 0.02 {
		t.Errorf("λ=0.1 chose %v", m.Threshold)
	}
}

func TestByThresholdErrors(t *testing.T) {
	ms := quickTrain(t)
	if _, err := ms.ByThreshold(0.5); err == nil {
		t.Error("ByThreshold(0.5) succeeded")
	}
	if _, err := ms.ByThreshold(0.02); err != nil {
		t.Errorf("ByThreshold(0.02): %v", err)
	}
}

func TestModelSaveLoadRoundTrip(t *testing.T) {
	ms := quickTrain(t)
	var buf bytes.Buffer
	if err := ms.Save(&buf); err != nil {
		t.Fatal(err)
	}
	got, err := Load(&buf)
	if err != nil {
		t.Fatal(err)
	}
	c := dag.Characteristics{Size: 200, CCR: 0.2, Parallelism: 0.6, Regularity: 0.5}
	if a, b := ms.Default().PredictSize(c), got.Default().PredictSize(c); a != b {
		t.Errorf("round-trip prediction changed: %d vs %d", a, b)
	}
	if _, err := Load(bytes.NewBufferString("{}")); err == nil {
		t.Error("Load accepted empty model set")
	}
	if _, err := Load(bytes.NewBufferString("not json")); err == nil {
		t.Error("Load accepted garbage")
	}
}

func TestTrainValidation(t *testing.T) {
	bad := TrainConfig{Sizes: []int{100}, CCRs: []float64{0.1}, Alphas: []float64{0.5}, Betas: []float64{0.5}, Reps: 1}
	if _, err := Train(bad); err == nil {
		t.Error("Train accepted single-α grid (planar fit impossible)")
	}
	bad2 := TrainConfig{Sizes: nil, CCRs: []float64{0.1}, Alphas: []float64{0.4, 0.6}, Betas: []float64{0.4, 0.6}, Reps: 1}
	if _, err := Train(bad2); err == nil {
		t.Error("Train accepted empty size grid")
	}
}

func TestSCRModel(t *testing.T) {
	// A faster scheduler (higher SCR) makes scheduling cheaper, so the
	// knee must not shrink; the fitted exponent must be ≥ 0.
	dags := genSet(t, 300, 0.01, 0.7, 0.5, 2)
	m, err := TrainSCR(dags, SweepConfig{}, []float64{0.25, 0.5, 1, 2, 4}, DefaultThreshold)
	if err != nil {
		t.Fatal(err)
	}
	if m.Exponent < -0.05 {
		t.Errorf("SCR exponent %v negative: knee shrinking with faster scheduler", m.Exponent)
	}
	if m.BaseKnee < 1 {
		t.Errorf("base knee %d", m.BaseKnee)
	}
	if got := m.Multiplier(1); math.Abs(got-1) > 1e-12 {
		t.Errorf("Multiplier(1) = %v", got)
	}
	if m.Multiplier(4) < m.Multiplier(1)-1e-9 {
		t.Errorf("multiplier decreasing in SCR")
	}
	if got := m.Adjust(100, 0); got != 100 {
		t.Errorf("Adjust with SCR 0 = %d", got)
	}
}

func TestHeterogeneityShiftsOptimum(t *testing.T) {
	// §V.4: with clock heterogeneity, MCP exploits fast hosts; the best
	// turn-around must not get worse than the homogeneous-at-mean case
	// by more than a few percent, and the hetero sweep must still show a
	// knee.
	dags := genSet(t, 200, 0.01, 0.6, 0.5, 2)
	hom, err := Sweep(dags, SweepConfig{})
	if err != nil {
		t.Fatal(err)
	}
	het, err := Sweep(dags, SweepConfig{Heterogeneity: 0.3, Seed: 5})
	if err != nil {
		t.Fatal(err)
	}
	_, homBest := hom.Best()
	_, hetBest := het.Best()
	if hetBest > homBest*1.25 || hetBest < homBest*0.5 {
		t.Errorf("heterogeneous best %v implausible vs homogeneous %v", hetBest, homBest)
	}
	k, _ := het.Knee(DefaultThreshold)
	if k <= 1 {
		t.Errorf("no knee under heterogeneity: %d", k)
	}
}

func TestSweepWithOtherHeuristics(t *testing.T) {
	// The sweep must work with every heuristic (used by the §V.6
	// sensitivity analysis).
	dags := genSet(t, 100, 0.1, 0.5, 0.5, 1)
	for _, h := range []sched.Heuristic{sched.FCA{}, sched.FCFS{}, sched.Greedy{}} {
		curve, err := Sweep(dags, SweepConfig{Heuristic: h, MaxSize: 40})
		if err != nil {
			t.Fatalf("%s: %v", h.Name(), err)
		}
		if k, _ := curve.Knee(DefaultThreshold); k < 1 {
			t.Errorf("%s: knee %d", h.Name(), k)
		}
	}
}
