package knee

import (
	"encoding/json"
	"errors"
	"fmt"
)

// ModelSetFormatVersion is the on-disk format version MarshalJSON stamps
// into every serialized ModelSet. UnmarshalJSON accepts artifacts up to and
// including this version (and unversioned legacy files, treated as v0) and
// rejects anything newer, so an old binary fails loudly instead of silently
// misreading a future layout.
const ModelSetFormatVersion = 1

// modelSetWire is the versioned JSON layout of a ModelSet. The payload
// fields match the legacy (pre-version) encoding, so v0 files decode
// through the same struct.
type modelSetWire struct {
	Format       string        `json:"format,omitempty"`
	Version      int           `json:"version,omitempty"`
	Models       []*Model      `json:"models"`
	Observations []Observation `json:"observations,omitempty"`
}

// modelSetFormat names the artifact so unrelated JSON fails decoding with a
// clear message instead of producing an empty model set.
const modelSetFormat = "rsgen-size-models"

// MarshalJSON encodes the model set in the versioned wire format.
func (ms *ModelSet) MarshalJSON() ([]byte, error) {
	return json.Marshal(modelSetWire{
		Format:       modelSetFormat,
		Version:      ModelSetFormatVersion,
		Models:       ms.Models,
		Observations: ms.Observations,
	})
}

// UnmarshalJSON decodes either the versioned wire format or a legacy
// unversioned file (format/version fields absent).
func (ms *ModelSet) UnmarshalJSON(data []byte) error {
	var w modelSetWire
	if err := json.Unmarshal(data, &w); err != nil {
		return err
	}
	if w.Format != "" && w.Format != modelSetFormat {
		return fmt.Errorf("knee: artifact format %q, want %q", w.Format, modelSetFormat)
	}
	if w.Version > ModelSetFormatVersion {
		return fmt.Errorf("knee: artifact version %d newer than supported %d", w.Version, ModelSetFormatVersion)
	}
	ms.Models = w.Models
	ms.Observations = w.Observations
	return nil
}

// validateLoaded checks the structural invariants PredictSize relies on, so
// a truncated or hand-edited artifact fails at load time, not per query.
func (ms *ModelSet) validateLoaded() error {
	if len(ms.Models) == 0 {
		return errors.New("knee: loaded model set is empty")
	}
	for _, m := range ms.Models {
		if m == nil {
			return errors.New("knee: loaded model set has a null model")
		}
		if len(m.Sizes) == 0 || len(m.CCRs) == 0 {
			return fmt.Errorf("knee: model at threshold %v has an empty grid", m.Threshold)
		}
		if len(m.Planes) != len(m.Sizes) {
			return fmt.Errorf("knee: model at threshold %v has %d plane rows for %d sizes", m.Threshold, len(m.Planes), len(m.Sizes))
		}
		for _, row := range m.Planes {
			if len(row) != len(m.CCRs) {
				return fmt.Errorf("knee: model at threshold %v has a plane row of %d cells for %d CCRs", m.Threshold, len(row), len(m.CCRs))
			}
		}
	}
	return nil
}
