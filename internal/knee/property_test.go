package knee

import (
	"math"
	"testing"
	"testing/quick"

	"rsgen/internal/dag"
	"rsgen/internal/xrand"
)

// synthetic curve generator for property tests: strictly positive
// turn-arounds over strictly increasing sizes.
func curveFrom(seed uint64, n int) Curve {
	rng := xrand.New(seed)
	c := Curve{}
	size := 1
	// Start high, drift down with noise, then drift up — the typical
	// knee shape, but the properties below must hold for ANY curve.
	t := rng.Uniform(500, 2000)
	for i := 0; i < n; i++ {
		c.Points = append(c.Points, Point{Size: size, TurnAround: t})
		size += 1 + rng.Intn(5)
		drift := rng.Uniform(-0.2, 0.05)
		if i > n*2/3 {
			drift = rng.Uniform(0, 0.1)
		}
		t = math.Max(1, t*(1+drift))
	}
	return c
}

func TestPropertyKneeIsSampledSize(t *testing.T) {
	f := func(seed uint64, n8 uint8, thrQ uint8) bool {
		n := int(n8%30) + 2
		c := curveFrom(seed, n)
		thr := []float64{0.001, 0.01, 0.05, 0.10}[thrQ%4]
		k, turn := c.Knee(thr)
		found := false
		for _, p := range c.Points {
			if p.Size == k {
				found = true
				if p.TurnAround != turn {
					return false
				}
			}
		}
		return found
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 100}); err != nil {
		t.Error(err)
	}
}

func TestPropertyKneeNeverAfterArgmin(t *testing.T) {
	// The knee is at most the argmin size: by definition the point after
	// which improvements fall below the threshold can never lie beyond
	// the global minimum.
	f := func(seed uint64, n8 uint8) bool {
		n := int(n8%30) + 2
		c := curveFrom(seed, n)
		k, _ := c.Knee(0.001)
		b, _ := c.Best()
		return k <= b
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 100}); err != nil {
		t.Error(err)
	}
}

func TestPropertyKneeMonotoneInThreshold(t *testing.T) {
	f := func(seed uint64, n8 uint8) bool {
		n := int(n8%30) + 2
		c := curveFrom(seed, n)
		prev := math.MaxInt
		for _, thr := range []float64{0.001, 0.005, 0.02, 0.05, 0.10} {
			k, _ := c.Knee(thr)
			if k > prev {
				return false
			}
			prev = k
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 100}); err != nil {
		t.Error(err)
	}
}

func TestPropertyKneeTurnWithinThresholdOfTail(t *testing.T) {
	// The defining property: no later sample improves on the knee by the
	// threshold or more.
	f := func(seed uint64, n8 uint8, thrQ uint8) bool {
		n := int(n8%30) + 2
		c := curveFrom(seed, n)
		thr := []float64{0.001, 0.02, 0.10}[thrQ%3]
		k, turn := c.Knee(thr)
		for _, p := range c.Points {
			if p.Size > k && turn-p.TurnAround >= thr*turn+1e-9 {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 100}); err != nil {
		t.Error(err)
	}
}

func TestPropertyPredictSizeBounds(t *testing.T) {
	// Any trained model must predict sizes in [1, DAG size] for any query
	// in (or near) its domain.
	cfg := TrainConfig{
		Sizes:      []int{80, 200},
		CCRs:       []float64{0.05, 0.5},
		Alphas:     []float64{0.4, 0.7},
		Betas:      []float64{0.2, 0.8},
		Reps:       1,
		Density:    0.5,
		MeanCost:   40,
		Thresholds: []float64{0.001},
		Seed:       31,
	}
	ms, err := Train(cfg)
	if err != nil {
		t.Fatal(err)
	}
	m := ms.Default()
	f := func(sizeQ uint16, ccrQ, aQ, bQ uint8) bool {
		c := dag.Characteristics{
			Size:        int(sizeQ%400) + 2,
			CCR:         float64(ccrQ%100) / 100,
			Parallelism: 0.3 + 0.6*float64(aQ%100)/100,
			Regularity:  float64(bQ%100) / 100,
		}
		p := m.PredictSize(c)
		return p >= 1 && p <= c.Size
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 200}); err != nil {
		t.Error(err)
	}
}
