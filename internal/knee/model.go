package knee

import (
	"encoding/json"
	"errors"
	"fmt"
	"io"
	"math"

	"rsgen/internal/dag"
	"rsgen/internal/stats"
	"rsgen/internal/xrand"
)

// Observation is one measured knee: the DAG configuration and the detected
// best RC size under one threshold.
type Observation struct {
	Size        int     `json:"size"`
	CCR         float64 `json:"ccr"`
	Parallelism float64 `json:"alpha"`
	Regularity  float64 `json:"beta"`
	Knee        int     `json:"knee"`
	TurnAround  float64 `json:"turn_around"`
}

// Model predicts the best RC size for one knee threshold: a grid of planes
// log2(knee) = a·α + b·β + c, one per (DAG size, CCR) observation-set cell,
// bilinearly interpolated in the (size, CCR) plane (§V.2.4).
type Model struct {
	Threshold float64   `json:"threshold"`
	Sizes     []float64 `json:"sizes"` // ascending DAG-size grid
	CCRs      []float64 `json:"ccrs"`  // ascending CCR grid
	// Planes[i][j] is the fitted plane at Sizes[i] × CCRs[j].
	Planes [][]stats.Plane `json:"planes"`
	// FitError is the mean relative error of the planar fits over the
	// observation set (the dissertation reports ≤16% at size 5000).
	FitError float64 `json:"fit_error"`
	// MeanDegradation and MeanRelCost are training-time estimates of the
	// model's performance degradation and relative cost versus the
	// searched optimum, used by the utility chooser (§V.3.2.3).
	MeanDegradation float64 `json:"mean_degradation"`
	MeanRelCost     float64 `json:"mean_rel_cost"`
}

// kneeAt evaluates the model at one grid cell for the query's α and β.
func (m *Model) kneeAt(i, j int, alpha, beta float64) float64 {
	return math.Exp2(m.Planes[i][j].Eval(alpha, beta))
}

// PredictSize returns the predicted best RC size for a DAG with the given
// characteristics: planar evaluation at the four surrounding grid corners
// followed by bilinear interpolation of the knee values in (size, CCR), per
// §V.2.4's "interpolate in both axes". Queries outside the grid clamp to the
// boundary. The result is at least 1.
func (m *Model) PredictSize(c dag.Characteristics) int {
	size := float64(c.Size)
	ccr := c.CCR
	si, sj := stats.Bracket(m.Sizes, size)
	ci, cj := stats.Bracket(m.CCRs, ccr)
	k00 := m.kneeAt(si, ci, c.Parallelism, c.Regularity)
	k01 := m.kneeAt(si, cj, c.Parallelism, c.Regularity)
	k10 := m.kneeAt(sj, ci, c.Parallelism, c.Regularity)
	k11 := m.kneeAt(sj, cj, c.Parallelism, c.Regularity)
	// Interpolate along CCR at both size rows, then along size.
	kLo := stats.Lerp(m.CCRs[ci], k00, m.CCRs[cj], k01, ccr)
	kHi := stats.Lerp(m.CCRs[ci], k10, m.CCRs[cj], k11, ccr)
	k := stats.Lerp(m.Sizes[si], kLo, m.Sizes[sj], kHi, size)
	pred := int(math.Round(k))
	if pred < 1 {
		pred = 1
	}
	// Never predict beyond the DAG's own width: no schedule can use more
	// hosts concurrently (§V.3.3's upper-bound argument).
	if c.Size > 0 {
		// Width is not part of Characteristics; bound by size instead.
		if pred > c.Size {
			pred = c.Size
		}
	}
	return pred
}

// ModelSet is the trained model family over all thresholds plus the shared
// observation data.
type ModelSet struct {
	Models []*Model `json:"models"` // ascending threshold
	// Observations are the raw (config, knee) pairs at the tightest
	// threshold, for table output (Table V-2).
	Observations []Observation `json:"observations"`
}

// ByThreshold returns the model trained at the given threshold, or an error
// listing the available thresholds.
func (ms *ModelSet) ByThreshold(threshold float64) (*Model, error) {
	for _, m := range ms.Models {
		if math.Abs(m.Threshold-threshold) < 1e-12 {
			return m, nil
		}
	}
	avail := make([]float64, len(ms.Models))
	for i, m := range ms.Models {
		avail[i] = m.Threshold
	}
	return nil, fmt.Errorf("knee: no model at threshold %v (have %v)", threshold, avail)
}

// Default returns the 0.1%-threshold model.
func (ms *ModelSet) Default() *Model {
	m, err := ms.ByThreshold(DefaultThreshold)
	if err != nil {
		// A ModelSet is always trained with the default threshold first;
		// fall back to the tightest model rather than failing.
		return ms.Models[0]
	}
	return m
}

// ChooseThreshold implements the §V.3.2.3 utility trade-off: the user
// accepts lambda units of relative cost per unit of performance degradation
// (e.g. trading 1% performance for 10% cost is lambda = 0.1); the chooser
// returns the model minimizing degradation + lambda·relativeCost using the
// training-time estimates.
func (ms *ModelSet) ChooseThreshold(lambda float64) *Model {
	best := ms.Models[0]
	bestU := math.Inf(1)
	for _, m := range ms.Models {
		u := m.MeanDegradation + lambda*m.MeanRelCost
		if u < bestU {
			best, bestU = m, u
		}
	}
	return best
}

// TrainConfig is the observation-set specification (Table V-1 by default).
type TrainConfig struct {
	Sizes  []int
	CCRs   []float64
	Alphas []float64
	Betas  []float64
	// Reps is the number of distinct DAG instances per configuration
	// (the dissertation uses 10).
	Reps int
	// Density and MeanCost are held at the Table IV-3 defaults.
	Density  float64
	MeanCost float64
	// Thresholds to train; nil defaults to the full family.
	Thresholds []float64
	// Sweep fixes the resource condition and scheduler.
	Sweep SweepConfig
	// Seed makes training deterministic.
	Seed uint64
}

// DefaultTrainConfig returns the full Table V-1 observation grid. Training
// it end-to-end is expensive (the dissertation burned CPU-months); tests and
// the quick experiment mode shrink the grid.
func DefaultTrainConfig() TrainConfig {
	return TrainConfig{
		Sizes:      []int{100, 500, 1000, 5000, 10000},
		CCRs:       []float64{0.01, 0.1, 0.3, 0.5, 0.8, 1.0},
		Alphas:     []float64{0.3, 0.4, 0.5, 0.6, 0.7, 0.8, 0.9},
		Betas:      []float64{0.01, 0.1, 0.3, 0.5, 0.8, 1.0},
		Reps:       10,
		Density:    0.5,
		MeanCost:   40,
		Thresholds: Thresholds,
		Seed:       1,
	}
}

func (cfg TrainConfig) validate() error {
	switch {
	case len(cfg.Sizes) == 0 || len(cfg.CCRs) == 0:
		return errors.New("knee: training grid needs ≥1 size and CCR")
	case len(cfg.Alphas) < 2 || len(cfg.Betas) < 2:
		return errors.New("knee: planar fit needs ≥2 parallelism and regularity values")
	case cfg.Reps < 1:
		return errors.New("knee: Reps < 1")
	}
	return nil
}

// genDAGs instantiates the repetition set for one configuration,
// deterministically per (seed, config).
func (cfg TrainConfig) genDAGs(size int, ccr, alpha, beta float64) ([]*dag.DAG, error) {
	spec := dag.GenSpec{
		Size:        size,
		CCR:         ccr,
		Parallelism: alpha,
		Density:     cfg.Density,
		Regularity:  beta,
		MeanCost:    cfg.MeanCost,
	}
	dags := make([]*dag.DAG, cfg.Reps)
	for r := 0; r < cfg.Reps; r++ {
		rng := xrand.NewFrom(cfg.Seed,
			uint64(size), math.Float64bits(ccr), math.Float64bits(alpha),
			math.Float64bits(beta), uint64(r))
		d, err := dag.Generate(spec, rng)
		if err != nil {
			return nil, err
		}
		dags[r] = d
	}
	return dags, nil
}

// Train runs the full observation-set procedure of §V.2.3–V.2.4: sweep each
// configuration's turn-around curve, detect knees at every threshold, fit
// one plane per (size, CCR) cell and threshold, and estimate each
// threshold's degradation/cost trade-off.
func Train(cfg TrainConfig) (*ModelSet, error) {
	if err := cfg.validate(); err != nil {
		return nil, err
	}
	thresholds := cfg.Thresholds
	if len(thresholds) == 0 {
		thresholds = Thresholds
	}

	type cell struct {
		alphas, betas []float64
		logKnees      [][]float64 // per threshold
		// For utility estimation.
		turnAtKnee [][]float64 // per threshold
		bestTurn   []float64
		costAtKnee [][]float64
		bestCost   []float64
	}
	nT := len(thresholds)
	cells := make([][]cell, len(cfg.Sizes))
	var observations []Observation

	for i, size := range cfg.Sizes {
		cells[i] = make([]cell, len(cfg.CCRs))
		for j, ccr := range cfg.CCRs {
			c := &cells[i][j]
			c.logKnees = make([][]float64, nT)
			c.turnAtKnee = make([][]float64, nT)
			c.costAtKnee = make([][]float64, nT)
			for _, alpha := range cfg.Alphas {
				for _, beta := range cfg.Betas {
					dags, err := cfg.genDAGs(size, ccr, alpha, beta)
					if err != nil {
						return nil, err
					}
					curve, err := Sweep(dags, cfg.Sweep)
					if err != nil {
						return nil, err
					}
					_, bestT := curve.Best()
					bestSize, _ := curve.Best()
					c.alphas = append(c.alphas, alpha)
					c.betas = append(c.betas, beta)
					c.bestTurn = append(c.bestTurn, bestT)
					c.bestCost = append(c.bestCost, curve.At(bestSize).CostUSD)
					for ti, thr := range thresholds {
						ks, kt := curve.Knee(thr)
						c.logKnees[ti] = append(c.logKnees[ti], math.Log2(float64(ks)))
						c.turnAtKnee[ti] = append(c.turnAtKnee[ti], kt)
						c.costAtKnee[ti] = append(c.costAtKnee[ti], curve.At(ks).CostUSD)
						if ti == 0 {
							observations = append(observations, Observation{
								Size: size, CCR: ccr, Parallelism: alpha,
								Regularity: beta, Knee: ks, TurnAround: kt,
							})
						}
					}
				}
			}
		}
	}

	ms := &ModelSet{Observations: observations}
	sizesF := make([]float64, len(cfg.Sizes))
	for i, s := range cfg.Sizes {
		sizesF[i] = float64(s)
	}
	for ti, thr := range thresholds {
		m := &Model{
			Threshold: thr,
			Sizes:     sizesF,
			CCRs:      append([]float64(nil), cfg.CCRs...),
			Planes:    make([][]stats.Plane, len(cfg.Sizes)),
		}
		var fitErrs, degs, relCosts []float64
		for i := range cfg.Sizes {
			m.Planes[i] = make([]stats.Plane, len(cfg.CCRs))
			for j := range cfg.CCRs {
				c := &cells[i][j]
				p, err := stats.FitPlane(c.alphas, c.betas, c.logKnees[ti])
				if err != nil {
					return nil, fmt.Errorf("knee: fit at size %d CCR %v: %w", cfg.Sizes[i], cfg.CCRs[j], err)
				}
				m.Planes[i][j] = p
				pred := make([]float64, len(c.alphas))
				actual := make([]float64, len(c.alphas))
				for k := range c.alphas {
					pred[k] = math.Exp2(p.Eval(c.alphas[k], c.betas[k]))
					actual[k] = math.Exp2(c.logKnees[ti][k])
				}
				fitErrs = append(fitErrs, stats.MeanRelativeError(pred, actual))
				for k := range c.alphas {
					if c.bestTurn[k] > 0 {
						degs = append(degs, c.turnAtKnee[ti][k]/c.bestTurn[k]-1)
					}
					if c.bestCost[k] > 0 {
						relCosts = append(relCosts, c.costAtKnee[ti][k]/c.bestCost[k]-1)
					}
				}
			}
		}
		m.FitError = stats.Mean(fitErrs)
		m.MeanDegradation = stats.Mean(degs)
		m.MeanRelCost = stats.Mean(relCosts)
		ms.Models = append(ms.Models, m)
	}
	return ms, nil
}

// Save writes the model set as JSON.
func (ms *ModelSet) Save(w io.Writer) error {
	enc := json.NewEncoder(w)
	enc.SetIndent("", "  ")
	return enc.Encode(ms)
}

// Load reads a model set saved with Save (versioned or legacy format).
func Load(r io.Reader) (*ModelSet, error) {
	var ms ModelSet
	if err := json.NewDecoder(r).Decode(&ms); err != nil {
		return nil, fmt.Errorf("knee: load model: %w", err)
	}
	if err := ms.validateLoaded(); err != nil {
		return nil, err
	}
	return &ms, nil
}
