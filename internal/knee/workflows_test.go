package knee

import (
	"testing"

	"rsgen/internal/dag"
)

// The §V.3.4 claims about workflow shapes that do NOT need the size model.

func TestSCECOptimalSizeEqualsChainCount(t *testing.T) {
	// "The SCEC DAGs are composed of parallel chains. For such DAGs, the
	// optimal size would equal the number of chains."
	const chains = 12
	d, err := dag.ParallelChains(chains, 20, 30, 0.03)
	if err != nil {
		t.Fatal(err)
	}
	curve, err := Sweep([]*dag.DAG{d}, SweepConfig{})
	if err != nil {
		t.Fatal(err)
	}
	k, _ := curve.Knee(DefaultThreshold)
	// The sweep grid is geometric, so accept the grid point at or just
	// below/above the chain count.
	if k < chains-2 || k > chains+2 {
		t.Errorf("SCEC knee = %d, want ≈%d (one host per chain)", k, chains)
	}
	// And the curve is flat beyond it: doubling the hosts buys nothing.
	at, err := EvalSize([]*dag.DAG{d}, SweepConfig{}, chains)
	if err != nil {
		t.Fatal(err)
	}
	double, err := EvalSize([]*dag.DAG{d}, SweepConfig{}, 2*chains)
	if err != nil {
		t.Fatal(err)
	}
	if double.Makespan < at.Makespan*0.999 {
		t.Errorf("extra hosts improved a chain workflow: %v → %v", at.Makespan, double.Makespan)
	}
}

func TestEMANWidthIsOptimal(t *testing.T) {
	// "For applications that are computationally intensive, such as EMAN
	// ... choosing the DAG width as the RC size would yield the best
	// application turn-around time."
	d, err := dag.EMANLike(40, 300, 0.01)
	if err != nil {
		t.Fatal(err)
	}
	curve, err := Sweep([]*dag.DAG{d}, SweepConfig{})
	if err != nil {
		t.Fatal(err)
	}
	best, bestTurn := curve.Best()
	atWidth, err := EvalSize([]*dag.DAG{d}, SweepConfig{}, d.Width())
	if err != nil {
		t.Fatal(err)
	}
	// Width must achieve (essentially) the optimal turn-around.
	if atWidth.TurnAround > bestTurn*1.005 {
		t.Errorf("width turn-around %v not within 0.5%% of best %v (at %d hosts)",
			atWidth.TurnAround, bestTurn, best)
	}
	// And fewer hosts than the width must be strictly worse: every heavy
	// task wants its own host.
	half, err := EvalSize([]*dag.DAG{d}, SweepConfig{}, d.Width()/2)
	if err != nil {
		t.Fatal(err)
	}
	if half.TurnAround < atWidth.TurnAround*1.2 {
		t.Errorf("half-width RC (%v) not clearly worse than width RC (%v)",
			half.TurnAround, atWidth.TurnAround)
	}
}
