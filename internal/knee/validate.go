package knee

import (
	"math"

	"rsgen/internal/dag"
	"rsgen/internal/stats"
)

// Predictor chooses an RC size for a set of same-configuration DAG
// instances. The model-based predictor and the "current practice" DAG-width
// predictor (§V.3.3) both implement it.
type Predictor func(dags []*dag.DAG) int

// ModelPredictor adapts a trained Model.
func ModelPredictor(m *Model) Predictor {
	return func(dags []*dag.DAG) int {
		// All instances share a configuration; predict from the first
		// and bound by the widest instance (no schedule uses more hosts
		// than the DAG width).
		c := dags[0].Characteristics()
		p := m.PredictSize(c)
		w := 0
		for _, d := range dags {
			if dw := d.Width(); dw > w {
				w = dw
			}
		}
		if p > w {
			p = w
		}
		return p
	}
}

// WidthPredictor is the current practice the dissertation argues against:
// request as many hosts as the DAG's widest level.
func WidthPredictor() Predictor {
	return func(dags []*dag.DAG) int {
		w := 1
		for _, d := range dags {
			if dw := d.Width(); dw > w {
				w = dw
			}
		}
		return w
	}
}

// ValidationRow aggregates the three §V.3.2.1 metrics over a set of DAG
// configurations: mean |predicted − optimal|/optimal size difference, mean
// turn-around degradation versus the searched optimum, and mean relative
// cost (negative = cheaper than the optimum's cost).
type ValidationRow struct {
	SizeDiff    float64
	Degradation float64
	RelCost     float64
	N           int
}

// ValidationConfig is one DAG configuration to validate on.
type ValidationConfig struct {
	Size        int
	CCR         float64
	Parallelism float64
	Regularity  float64
}

// ValidateModel measures a predictor against the Table V-3 searched optimum
// over the given configurations, generating Reps instances per
// configuration with the TrainConfig's density/cost defaults.
func ValidateModel(pred Predictor, cfgs []ValidationConfig, tc TrainConfig) (ValidationRow, error) {
	var sizeDiffs, degs, relCosts []float64
	for _, vc := range cfgs {
		dags, err := tc.genDAGs(vc.Size, vc.CCR, vc.Parallelism, vc.Regularity)
		if err != nil {
			return ValidationRow{}, err
		}
		predicted := pred(dags)
		predPoint, err := EvalSize(dags, tc.Sweep, predicted)
		if err != nil {
			return ValidationRow{}, err
		}
		opt, err := SearchOptimalSize(dags, tc.Sweep, predicted)
		if err != nil {
			return ValidationRow{}, err
		}
		if opt.Size > 0 {
			sizeDiffs = append(sizeDiffs, math.Abs(float64(predicted-opt.Size))/float64(opt.Size))
		}
		if opt.TurnAround > 0 {
			deg := predPoint.TurnAround/opt.TurnAround - 1
			if deg < 0 {
				deg = 0 // the search found the true optimum by definition of "actual"
			}
			degs = append(degs, deg)
		}
		if opt.CostUSD > 0 {
			relCosts = append(relCosts, predPoint.CostUSD/opt.CostUSD-1)
		}
	}
	return ValidationRow{
		SizeDiff:    stats.Mean(sizeDiffs),
		Degradation: stats.Mean(degs),
		RelCost:     stats.Mean(relCosts),
		N:           len(cfgs),
	}, nil
}

// SCRModel captures how the predicted best RC size scales with the
// scheduler-clock-rate ratio (§V.7, Figs. V-18–V-24): a power law
// knee(SCR) = knee(1) · SCR^Exponent fitted in log-log space.
type SCRModel struct {
	Exponent float64
	// BaseKnee is the knee at SCR = 1 for the training configuration.
	BaseKnee int
	// Line is the underlying fit of log2(knee) against log2(SCR).
	Line stats.Line
}

// Multiplier returns knee(scr)/knee(1) under the fitted law.
func (m SCRModel) Multiplier(scr float64) float64 {
	if scr <= 0 {
		return 1
	}
	return math.Pow(scr, m.Exponent)
}

// Adjust scales a predicted RC size for a scheduler running at scr × the
// reference clock.
func (m SCRModel) Adjust(predicted int, scr float64) int {
	v := int(math.Round(float64(predicted) * m.Multiplier(scr)))
	if v < 1 {
		v = 1
	}
	return v
}

// TrainSCR sweeps the knee across the given SCR values for one DAG set and
// fits the power law. SCR values must be positive and include a spread
// (≥ 2 distinct values).
func TrainSCR(dags []*dag.DAG, cfg SweepConfig, scrs []float64, threshold float64) (SCRModel, error) {
	var xs, ys []float64
	base := 0
	for _, scr := range scrs {
		c := cfg
		c.SCR = scr
		curve, err := Sweep(dags, c)
		if err != nil {
			return SCRModel{}, err
		}
		k, _ := curve.Knee(threshold)
		xs = append(xs, math.Log2(scr))
		ys = append(ys, math.Log2(float64(k)))
		if scr == 1 {
			base = k
		}
	}
	line, err := stats.FitLine(xs, ys)
	if err != nil {
		return SCRModel{}, err
	}
	if base == 0 {
		base = int(math.Round(math.Exp2(line.Eval(0))))
	}
	return SCRModel{Exponent: line.Slope, BaseKnee: base, Line: line}, nil
}
