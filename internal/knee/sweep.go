// Package knee implements the resource-collection size prediction model of
// dissertation Chapter V: sweeping application turn-around time as a
// function of RC size, detecting the "knee" (the smallest RC size beyond
// which turn-around improves by less than a threshold), fitting the
// empirical surface log2(knee) = a·α + b·β + c per (DAG size, CCR) grid
// point, and interpolating between grid points to predict the best RC size
// for arbitrary DAGs.
package knee

import (
	"context"
	"fmt"
	"math"
	"time"

	"rsgen/internal/dag"
	"rsgen/internal/eval"
	"rsgen/internal/sched"
)

// DefaultThreshold is the knee threshold of §V.2.2: the best RC size is the
// smallest size such that any bigger size improves turn-around by less than
// 0.1%.
const DefaultThreshold = 0.001

// Thresholds is the threshold family the model is trained for, enabling the
// performance/cost utility trade-off of §V.3.2.3.
var Thresholds = []float64{0.001, 0.005, 0.01, 0.02, 0.05, 0.10}

// SweepConfig fixes the resource conditions and scheduler for a knee sweep.
type SweepConfig struct {
	// Heuristic schedules the DAGs; nil defaults to MCP, the reference
	// heuristic of Chapter V.
	Heuristic sched.Heuristic
	// ClockGHz is the compute hosts' (mean) clock; 0 defaults to the
	// 2.80 GHz experimental hosts of §III.4.2.
	ClockGHz float64
	// Heterogeneity is the clock-rate heterogeneity of §V.4: host clocks
	// are uniform in ClockGHz·(1±Heterogeneity). 0 is homogeneous.
	Heterogeneity float64
	// BandwidthMbps is the uniform host-pair bandwidth; 0 defaults to the
	// 10 Gb/s reference (homogeneous-network model of §V.2).
	BandwidthMbps float64
	// SCR is the scheduler-clock-rate ratio of §V.7; 0 defaults to 1
	// (the 2.80 GHz reference scheduler).
	SCR float64
	// GridFactor controls RC-size sampling resolution: successive sweep
	// sizes grow by this factor (at least +1). 0 defaults to 1.08.
	GridFactor float64
	// MaxSize caps the sweep; 0 defaults to 10% above the widest DAG.
	MaxSize int
	// Seed derives the RNG streams for heterogeneous RC draws.
	Seed uint64
	// Workers bounds the evaluation pool's concurrency; 0 uses all cores,
	// 1 forces serial evaluation. Output is identical either way.
	Workers int
	// Timeout, when positive, is a per-evaluation-point deadline.
	Timeout time.Duration
	// Ctx cancels in-flight sweeps; nil defaults to context.Background().
	Ctx context.Context
	// NoCache disables memoization through eval.DefaultCache (benchmarks).
	NoCache bool
}

func (c SweepConfig) withDefaults() SweepConfig {
	if c.Heuristic == nil {
		c.Heuristic = sched.MCP{}
	}
	if c.GridFactor == 0 {
		c.GridFactor = 1.08
	}
	return c
}

// point translates the sweep's resource condition into an evaluation
// request at the given RC size.
func (c SweepConfig) point(dags []*dag.DAG, size int) eval.Point {
	return eval.Point{
		Dags:          dags,
		Size:          size,
		Heuristic:     c.Heuristic,
		ClockGHz:      c.ClockGHz,
		Heterogeneity: c.Heterogeneity,
		BandwidthMbps: c.BandwidthMbps,
		SCR:           c.SCR,
		Seed:          c.Seed,
	}
}

// pool builds the evaluation pool the sweep fans points through.
func (c SweepConfig) pool() *eval.Pool {
	pl := &eval.Pool{Workers: c.Workers, Ctx: c.Ctx, Timeout: c.Timeout}
	if !c.NoCache {
		pl.Cache = eval.DefaultCache
	}
	return pl
}

func fromResult(r eval.Result) Point {
	return Point{
		Size:       r.Size,
		TurnAround: r.TurnAround,
		Makespan:   r.Makespan,
		SchedTime:  r.SchedTime,
		CostUSD:    r.CostUSD,
	}
}

// Point is one sampled RC size on a turn-around curve. All time fields are
// means over the swept DAGs.
type Point struct {
	Size       int
	TurnAround float64
	Makespan   float64
	SchedTime  float64
	// CostUSD is the mean resource cost of the run at this size
	// (RC held for the full turn-around, §V.3.2.1).
	CostUSD float64
}

// Curve is turn-around versus RC size, sizes strictly increasing.
type Curve struct {
	Points []Point
}

// EvalSize schedules every DAG on an RC of the given size and returns the
// mean metrics, using the configured resource condition. It goes through
// the shared evaluation engine, so repeated sizes hit the memoization
// cache.
func EvalSize(dags []*dag.DAG, cfg SweepConfig, size int) (Point, error) {
	cfg = cfg.withDefaults()
	if size < 1 {
		return Point{}, fmt.Errorf("knee: RC size %d < 1", size)
	}
	r, err := cfg.pool().Evaluate(cfg.point(dags, size))
	if err != nil {
		return Point{}, err
	}
	return fromResult(r), nil
}

// Sweep evaluates turn-around over a geometric grid of RC sizes from 1 to
// MaxSize (default: 10% above the widest DAG), producing the curve whose
// knee defines the best RC size (Figs. V-2/V-3).
func Sweep(dags []*dag.DAG, cfg SweepConfig) (Curve, error) {
	cfg = cfg.withDefaults()
	if len(dags) == 0 {
		return Curve{}, fmt.Errorf("knee: no DAGs to sweep")
	}
	maxSize := cfg.MaxSize
	if maxSize == 0 {
		w := 0
		for _, d := range dags {
			if dw := d.Width(); dw > w {
				w = dw
			}
		}
		maxSize = int(math.Ceil(float64(w)*1.1)) + 1
	}
	var points []eval.Point
	for size := 1; size <= maxSize; {
		points = append(points, cfg.point(dags, size))
		next := int(math.Ceil(float64(size) * cfg.GridFactor))
		if next <= size {
			next = size + 1
		}
		size = next
	}
	results, err := cfg.pool().EvaluateAll(points)
	if err != nil {
		return Curve{}, err
	}
	curve := Curve{Points: make([]Point, len(results))}
	for i, r := range results {
		curve.Points[i] = fromResult(r)
	}
	return curve, nil
}

// Best returns the size with minimal turn-around and that turn-around.
func (c Curve) Best() (int, float64) {
	best := -1
	bestT := math.Inf(1)
	for _, p := range c.Points {
		if p.TurnAround < bestT {
			best, bestT = p.Size, p.TurnAround
		}
	}
	return best, bestT
}

// Knee returns the best RC size under the §V.2.2 definition: the smallest
// sampled size whose turn-around is within threshold of everything a bigger
// RC could achieve — formally the smallest s with
// T(s) − min_{s' > s} T(s') < threshold · T(s).
func (c Curve) Knee(threshold float64) (int, float64) {
	n := len(c.Points)
	if n == 0 {
		return 0, math.NaN()
	}
	// minAfter[i] = min turn-around strictly after point i.
	minAfter := make([]float64, n)
	run := math.Inf(1)
	for i := n - 1; i >= 0; i-- {
		minAfter[i] = run
		if c.Points[i].TurnAround < run {
			run = c.Points[i].TurnAround
		}
	}
	for i, p := range c.Points {
		if p.TurnAround-minAfter[i] < threshold*p.TurnAround {
			return p.Size, p.TurnAround
		}
	}
	last := c.Points[n-1]
	return last.Size, last.TurnAround
}

// At returns the curve point at exactly the given size, or the nearest
// sampled size when absent.
func (c Curve) At(size int) Point {
	best := c.Points[0]
	bestDist := math.Abs(float64(best.Size - size))
	for _, p := range c.Points[1:] {
		if d := math.Abs(float64(p.Size - size)); d < bestDist {
			best, bestDist = p, d
		}
	}
	return best
}

// SearchCandidates returns the RC sizes probed by the actual-optimum search
// heuristic of Table V-3, seeded by the predicted size x: x itself,
// x ± 10%…50%, 2x, 2.5x, 3x, and the halving sequence x/2, x/4, … 1.
// Candidates are deduplicated, clamped to ≥ 1, and sorted ascending.
func SearchCandidates(predicted int) []int {
	if predicted < 1 {
		predicted = 1
	}
	x := float64(predicted)
	set := map[int]struct{}{predicted: {}}
	add := func(v float64) {
		i := int(math.Round(v))
		if i >= 1 {
			set[i] = struct{}{}
		}
	}
	for _, f := range []float64{0.1, 0.2, 0.3, 0.4, 0.5} {
		add(x * (1 + f))
		add(x * (1 - f))
	}
	add(2 * x)
	add(2.5 * x)
	add(3 * x)
	for v := predicted / 2; v >= 1; v /= 2 {
		set[v] = struct{}{}
	}
	out := make([]int, 0, len(set))
	for v := range set {
		out = append(out, v)
	}
	sortInts(out)
	return out
}

func sortInts(xs []int) {
	for i := 1; i < len(xs); i++ {
		for j := i; j > 0 && xs[j] < xs[j-1]; j-- {
			xs[j], xs[j-1] = xs[j-1], xs[j]
		}
	}
}

// SearchOptimalSize runs the Table V-3 heuristic: evaluate every candidate
// seeded by the predicted size and return the size with the best (smallest)
// turn-around, with the full evaluation per candidate. Candidates are
// evaluated through the pool; the ascending strict-< scan keeps the winner
// identical to the serial loop (smallest size on ties).
func SearchOptimalSize(dags []*dag.DAG, cfg SweepConfig, predicted int) (Point, error) {
	cfg = cfg.withDefaults()
	sizes := SearchCandidates(predicted)
	points := make([]eval.Point, len(sizes))
	for i, size := range sizes {
		points[i] = cfg.point(dags, size)
	}
	results, err := cfg.pool().EvaluateAll(points)
	if err != nil {
		return Point{}, err
	}
	best := Point{TurnAround: math.Inf(1)}
	for _, r := range results {
		if r.TurnAround < best.TurnAround {
			best = fromResult(r)
		}
	}
	return best, nil
}
