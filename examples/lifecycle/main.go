// Lifecycle: all six steps of executing an application on an LSDE
// (dissertation §II.2) driven end-to-end — discovery/selection via a
// generated specification, binding through per-cluster resource managers,
// the Chapter VII fallback to an alternative specification when the optimal
// one cannot be bound in time, scheduling with the predicted heuristic,
// simulated execution, and vgMON-style monitoring with a failure injected
// mid-run.
package main

import (
	"fmt"
	"log"

	"rsgen"
	"rsgen/internal/knee"
)

func main() {
	// The application: a mid-size workflow.
	d, err := rsgen.GenerateDAG(rsgen.DAGSpec{
		Size: 400, CCR: 0.1, Parallelism: 0.6, Density: 0.5, Regularity: 0.5, MeanCost: 40,
	}, rsgen.NewRNG(11))
	if err != nil {
		log.Fatal(err)
	}
	fmt.Println("application:", d.Characteristics())

	// The environment: a synthetic LSDE plus its binding layer. Batch
	// queues average 20 minutes — deep enough that some requests miss
	// our deadline.
	p, err := rsgen.GeneratePlatform(rsgen.PlatformSpec{Clusters: 150, Year: 2007}, rsgen.NewRNG(12))
	if err != nil {
		log.Fatal(err)
	}
	grid := rsgen.NewBindingGrid(p, 1200, rsgen.NewRNG(13))
	fmt.Printf("platform: %d clusters, %d hosts; binding deadline 300 s\n\n", len(p.Clusters), p.NumHosts())

	// Step 1+2 (discovery & selection): generate the optimal spec and
	// resolve it with the vgES-style finder.
	fmt.Println("training prediction models...")
	gen, err := rsgen.QuickGenerator(1)
	if err != nil {
		log.Fatal(err)
	}
	base, err := gen.Generate(d, rsgen.Options{ClockGHz: 3.2})
	if err != nil {
		log.Fatal(err)
	}
	fmt.Println("\noptimal specification:")
	fmt.Print(base.Summary())

	const bindDeadline = 300 // seconds we are willing to wait for resources

	// Step 3 (binding), with the Chapter VII fallback loop: if the
	// optimal request cannot be selected or bound, degrade to the next
	// alternative (slower clock class, measured-equivalent size).
	specs := []*rsgen.Specification{base}
	alts, err := gen.Alternatives(d, base, []float64{3.0, 2.8, 2.4, 2.0}, knee.SweepConfig{}, 0.15)
	if err != nil {
		log.Fatal(err)
	}
	for _, a := range alts {
		specs = append(specs, a.Spec)
	}
	var bound *rsgen.Binding
	var used *rsgen.Specification
	var excluded []int // clusters whose managers stalled or refused
	attempt := 0
	for _, s := range specs {
		if bound != nil {
			break
		}
		// Up to three re-selections per specification, excluding
		// clusters the binding probe showed to be too slow.
		for retry := 0; retry < 3; retry++ {
			attempt++
			rc, err := rsgen.ResolveVgDLExcluding(p, s.VgDL, excluded)
			if err != nil {
				fmt.Printf("attempt %d (%.1f GHz × %d): selection failed: %v\n", attempt, s.MaxClockGHz, s.RCSize, err)
				break // try the next (degraded) specification
			}
			b, err := grid.Bind(rc, bindDeadline)
			if err == nil {
				bound, used = b, s
				fmt.Printf("attempt %d (%.1f GHz × %d): bound, resources available in %.0f s\n",
					attempt, s.MaxClockGHz, s.RCSize, b.AvailableAt)
				break
			}
			fmt.Printf("attempt %d (%.1f GHz × %d): binding failed: %v\n", attempt, s.MaxClockGHz, s.RCSize, err)
			// Mark the stalled clusters and re-select around them.
			for cluster, at := range grid.Probe(rc) {
				if at > bindDeadline {
					excluded = append(excluded, cluster)
				}
			}
		}
	}
	if bound == nil {
		// Last resort: best-effort binding of the base selection.
		rc, err := rsgen.ResolveVgDL(p, base.VgDL)
		if err != nil {
			log.Fatal("no specification selectable: ", err)
		}
		bound, err = grid.BindBestEffort(rc, bindDeadline)
		if err != nil {
			log.Fatal("nothing bindable: ", err)
		}
		used = base
		fmt.Printf("fallback: best-effort binding kept %d of %d hosts\n", bound.RC.Size(), rc.Size())
	}

	// Step 4 (scheduling) with the predicted heuristic.
	heuristic, err := rsgen.HeuristicByName(used.Heuristic)
	if err != nil {
		log.Fatal(err)
	}
	schedule, err := heuristic.Schedule(d, bound.RC)
	if err != nil {
		log.Fatal(err)
	}
	if err := rsgen.ValidateSchedule(d, bound.RC, schedule); err != nil {
		log.Fatal("invalid schedule: ", err)
	}
	st := rsgen.SchedulingTime(schedule.Ops, 1)
	fmt.Printf("\nscheduled with %s: makespan %.1f s, turn-around %.1f s (incl. %.0f s binding wait)\n",
		used.Heuristic, schedule.Makespan, bound.AvailableAt+st+schedule.Makespan, bound.AvailableAt)

	// Step 5 (launch/execute): replay on the independent simulator.
	res, err := rsgen.ExecuteSchedule(d, bound.RC, schedule)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("simulated execution: makespan %.1f s, utilization %.1f%%\n", res.Makespan, res.Utilization*100)

	// Step 6 (monitoring): watch the run; inject a failure halfway.
	mon, err := rsgen.NewMonitor(bound.RC)
	if err != nil {
		log.Fatal(err)
	}
	if err := mon.AttachSchedule(d, schedule); err != nil {
		log.Fatal(err)
	}
	half := schedule.Makespan / 2
	busiest := 0
	for h := 1; h < bound.RC.Size(); h++ {
		if mon.ExpectedBusy(h, half) {
			busiest = h
			break
		}
	}
	fmt.Printf("\ninjecting a failure on host %d at t=%.0f s:\n", busiest, half)
	for _, v := range mon.Apply(rsgen.MonitorEvent{Time: half, HostIndex: busiest, Down: true}) {
		fmt.Println(" ", v)
	}
	impacted := mon.ImpactedTasks(d, schedule, busiest, half)
	fmt.Printf("  %d scheduled tasks on that host still pending → migrating\n", len(impacted))

	// React: re-plan the lost and pending work onto the survivors.
	rescued, impact, err := rsgen.AssessRescueImpact(d, bound.RC, schedule, busiest, half)
	if err != nil {
		log.Fatal(err)
	}
	if err := rsgen.ValidateSchedule(d, bound.RC, rescued); err != nil {
		log.Fatal("rescued schedule invalid: ", err)
	}
	fmt.Printf("  rescue moved %d tasks; makespan %.1f s → %.1f s (%+.1f%%)\n",
		impact.MovedTasks, impact.OldMakespan, impact.NewMakespan, impact.RelativeLoss*100)

	// The same failure after the run is benign (§II.2.6).
	after := mon.Apply(rsgen.MonitorEvent{Time: schedule.Makespan + 60, HostIndex: busiest, Down: true})
	fmt.Printf("  the same failure after the makespan raises %d violations (benign idleness)\n", len(after))
}
