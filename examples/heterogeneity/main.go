// Heterogeneity and cost trade-offs: the Chapter V/VII analyses a user with
// a budget actually runs. Sweeps the turn-around vs RC-size curve, shows the
// knee under several thresholds (performance/cost utility), measures the
// effect of clock-rate heterogeneity, and computes the "how many slower
// hosts replace the fast ones" downgrade table.
package main

import (
	"fmt"
	"log"
	"os"
	"text/tabwriter"

	"rsgen"
)

func main() {
	// Ten instances of one workflow configuration, as the dissertation's
	// experiments average over DAG instances.
	spec := rsgen.DAGSpec{
		Size: 600, CCR: 0.05, Parallelism: 0.6,
		Density: 0.5, Regularity: 0.5, MeanCost: 40,
	}
	var dags []*rsgen.DAG
	for r := 0; r < 5; r++ {
		d, err := rsgen.GenerateDAG(spec, rsgen.NewRNG(uint64(100+r)))
		if err != nil {
			log.Fatal(err)
		}
		dags = append(dags, d)
	}
	fmt.Println("workflow:", dags[0].Characteristics())

	// 1. The turn-around curve and its knee family.
	curve, err := rsgen.SweepTurnAround(dags, rsgen.SweepConfig{})
	if err != nil {
		log.Fatal(err)
	}
	bestSize, bestTurn := curve.Best()
	fmt.Printf("\nbest turn-around: %.1f s at %d hosts\n", bestTurn, bestSize)
	tw := tabwriter.NewWriter(os.Stdout, 2, 4, 2, ' ', 0)
	fmt.Fprintln(tw, "knee threshold\tRC size\tturn-around (s)\tvs best")
	for _, thr := range []float64{0.001, 0.01, 0.02, 0.05, 0.10} {
		size, turn := curve.Knee(thr)
		fmt.Fprintf(tw, "%.1f%%\t%d\t%.1f\t%+.2f%%\n", thr*100, size, turn, (turn/bestTurn-1)*100)
	}
	if err := tw.Flush(); err != nil {
		log.Fatal(err)
	}
	fmt.Println("looser thresholds trade a little turn-around for far fewer hosts (Fig. V-7).")

	// 2. Clock-rate heterogeneity: how much does a mixed collection cost?
	fmt.Println("\nheterogeneity (same mean clock, ±h spread):")
	tw = tabwriter.NewWriter(os.Stdout, 2, 4, 2, ' ', 0)
	fmt.Fprintln(tw, "h\tknee size\tknee turn-around (s)")
	for _, het := range []float64{0, 0.1, 0.3, 0.5} {
		c, err := rsgen.SweepTurnAround(dags, rsgen.SweepConfig{Heterogeneity: het, Seed: 9})
		if err != nil {
			log.Fatal(err)
		}
		size, turn := c.Knee(0.001)
		fmt.Fprintf(tw, "%.1f\t%d\t%.1f\n", het, size, turn)
	}
	if err := tw.Flush(); err != nil {
		log.Fatal(err)
	}
	fmt.Println("MCP exploits the faster half of a heterogeneous collection, so moderate")
	fmt.Println("spreads cost little (Table VI-3) — useful when slower hosts are cheaper.")

	// 3. The downgrade table: base request is the knee at 3.5 GHz; what
	// if only slower hosts are free?
	base, _ := curve.Knee(0.001)
	baseCurve, err := rsgen.SweepTurnAround(dags, rsgen.SweepConfig{ClockGHz: 3.5})
	if err != nil {
		log.Fatal(err)
	}
	base35, _ := baseCurve.Knee(0.001)
	_ = base
	fmt.Printf("\nalternative specifications for a base of %d × 3.5 GHz hosts (Fig. VII-7),\n", base35)
	fmt.Println("accepting up to 15% longer turn-around on a downgrade:")
	tw = tabwriter.NewWriter(os.Stdout, 2, 4, 2, ' ', 0)
	fmt.Fprintln(tw, "clock class\tequivalent hosts\trelative size")
	for _, alt := range []float64{3.2, 3.0, 2.8, 2.4, 2.0} {
		size, ok, err := rsgen.EquivalentSize(dags, rsgen.SweepConfig{}, base35, 3.5, alt, 0.15)
		if err != nil {
			log.Fatal(err)
		}
		if !ok {
			fmt.Fprintf(tw, "%.1f GHz\tunreachable\t-\n", alt)
			continue
		}
		fmt.Fprintf(tw, "%.1f GHz\t%d\t%.2fx\n", alt, size, float64(size)/float64(base35))
	}
	if err := tw.Flush(); err != nil {
		log.Fatal(err)
	}
	fmt.Println("below some clock class no host count catches up — the serial spine of the")
	fmt.Println("workflow scales with clock rate, which is the Fig. VII-7 threshold phenomenon.")
}
