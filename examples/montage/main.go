// Montage end-to-end: the dissertation's flagship scenario. Build the
// 1629-task Montage astronomy workflow, generate its resource
// specification, resolve the specification against all three resource
// selection systems over a synthetic 150-cluster LSDE, schedule with the
// predicted heuristic on each returned resource collection, and compare
// against the "current practice" of requesting one host per task of the
// widest level.
package main

import (
	"fmt"
	"log"
	"os"
	"text/tabwriter"

	"rsgen"
)

func main() {
	d, err := rsgen.Montage1629(0.01)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Println("Montage workflow:", d.Characteristics())

	p, err := rsgen.GeneratePlatform(rsgen.PlatformSpec{Clusters: 150, Year: 2007}, rsgen.NewRNG(7))
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("platform: %d clusters, %d hosts\n\n", len(p.Clusters), p.NumHosts())

	fmt.Println("training prediction models...")
	gen, err := rsgen.QuickGenerator(1)
	if err != nil {
		log.Fatal(err)
	}
	s, err := gen.Generate(d, rsgen.Options{ClockGHz: 2.8, HeterogeneityTolerance: 0.3})
	if err != nil {
		log.Fatal(err)
	}
	fmt.Println("\ngenerated specification:")
	fmt.Print(s.Summary())
	heuristic, err := rsgen.HeuristicByName(s.Heuristic)
	if err != nil {
		log.Fatal(err)
	}

	// Resolve the same specification through each selection system.
	type selection struct {
		system string
		rc     *rsgen.ResourceCollection
	}
	var selections []selection
	if rc, err := rsgen.ResolveVgDL(p, s.VgDL); err != nil {
		fmt.Println("vgES:", err)
	} else {
		selections = append(selections, selection{"vgES (vgDL)", rc})
	}
	if rc, err := rsgen.MatchClassAd(p, s.ClassAd, s.RCSize); err != nil {
		fmt.Println("Condor:", err)
	} else {
		selections = append(selections, selection{"Condor (ClassAd)", rc})
	}
	if rc, err := rsgen.SelectSword(p, s.SwordXML, 7); err != nil {
		fmt.Println("SWORD:", err)
	} else {
		selections = append(selections, selection{"SWORD (XML)", rc})
	}
	// The baseline the dissertation argues against: DAG width, fastest
	// hosts.
	selections = append(selections, selection{"current practice (width)", rsgen.TopHostsRC(p, d.Width())})

	fmt.Println("\nscheduling with", s.Heuristic, "on each returned resource collection:")
	tw := tabwriter.NewWriter(os.Stdout, 2, 4, 2, ' ', 0)
	fmt.Fprintln(tw, "selection\thosts\tsched time (s)\tmakespan (s)\tturn-around (s)")
	for _, sel := range selections {
		sched, err := heuristic.Schedule(d, sel.rc)
		if err != nil {
			log.Fatal(err)
		}
		if err := rsgen.ValidateSchedule(d, sel.rc, sched); err != nil {
			log.Fatalf("%s: invalid schedule: %v", sel.system, err)
		}
		st := rsgen.SchedulingTime(sched.Ops, 1)
		fmt.Fprintf(tw, "%s\t%d\t%.2f\t%.2f\t%.2f\n",
			sel.system, sel.rc.Size(), st, sched.Makespan, st+sched.Makespan)
	}
	if err := tw.Flush(); err != nil {
		log.Fatal(err)
	}
	fmt.Println("\nthe model-sized collections reach the same turn-around as the width-sized")
	fmt.Println("request while holding a fraction of the hosts — the Chapter VII headline.")
}
