// Quickstart: generate a workflow DAG, train the prediction models, and
// produce a resource specification — the minimal end-to-end use of the
// library.
package main

import (
	"fmt"
	"log"

	"rsgen"
)

func main() {
	// A medium workflow: 800 tasks, light communication, fairly parallel.
	d, err := rsgen.GenerateDAG(rsgen.DAGSpec{
		Size:        800,
		CCR:         0.1,
		Parallelism: 0.6,
		Density:     0.5,
		Regularity:  0.5,
		MeanCost:    40, // seconds on the 1.5 GHz reference host
	}, rsgen.NewRNG(42))
	if err != nil {
		log.Fatal(err)
	}
	fmt.Println("workflow:", d.Characteristics())
	fmt.Println("width:   ", d.Width(), "tasks (the naive RC size 'current practice' would request)")

	// Train the size and heuristic prediction models. QuickGenerator uses
	// a compact observation grid; production users train wider grids once
	// and cache them.
	fmt.Println("\ntraining prediction models...")
	gen, err := rsgen.QuickGenerator(1)
	if err != nil {
		log.Fatal(err)
	}

	// Generate the specification: target 3.0 GHz hosts, tolerate hosts
	// down to 30% slower.
	s, err := gen.Generate(d, rsgen.Options{
		ClockGHz:               3.0,
		HeterogeneityTolerance: 0.3,
	})
	if err != nil {
		log.Fatal(err)
	}
	fmt.Println("\ngenerated specification:")
	fmt.Print(s.Summary())

	fmt.Println("\nvgDL (for vgES):")
	fmt.Print(s.VgDL)
	fmt.Println("\nClassAd (for Condor):")
	fmt.Println(s.ClassAd)
	fmt.Println("\nXML (for SWORD):")
	fmt.Println(s.SwordXML)
}
